//! Crash-safe run journal for checkpointed streaming (DESIGN.md §14).
//!
//! A [`RunJournal`] is the durable record of one stream's sanitization run:
//! the seed, a fingerprint of the effective [`VerroConfig`], a fingerprint
//! of the ingested input, and one entry per *committed* segment — its
//! display range and the fingerprint of the rendered frames the sink
//! persisted. Every mutation rewrites the whole file through the same
//! write-temp → `sync_all` → rename discipline as the ε-ledger store, so a
//! crash at any instant leaves either the previous complete journal or the
//! new complete journal, never a torn hybrid.
//!
//! The journal is what makes resume ε-safe *by construction*: Phases I/II
//! are pure functions of `(segments, annotations, config, seed)`, so a
//! resumed run that passes the seed/config/input fingerprint checks replays
//! the exact randomness transcript of the interrupted run — it can only
//! ever re-derive the same `V*` bytes, never re-draw them. A journal whose
//! fingerprints do not match the resumed inputs is refused with a typed
//! error ([`VerroError::ResumeMismatch`]); a file that does not parse is
//! [`VerroError::JournalCorrupt`]. The engine never guesses and never
//! silently re-randomizes.
//!
//! Fingerprints are FNV-1a (64-bit) folds over raw bytes — deliberately
//! not a serialization format, so they work identically with any serde
//! backend and cost one pass over data the run touches anyway.

use crate::config::VerroConfig;
use crate::error::VerroError;
use std::io::Write;
use std::path::{Path, PathBuf};
use verro_video::image::ImageBuffer;

/// Magic format tag; bumped on breaking layout changes.
const FORMAT: &str = "verro-journal-v1";

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds `bytes` into an FNV-1a accumulator.
pub fn fnv1a_fold(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a hash of one byte string.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_fold(FNV_OFFSET, bytes)
}

/// The empty-accumulator seed for incremental folds.
pub fn fnv1a_seed() -> u64 {
    FNV_OFFSET
}

/// Fingerprint of the effective configuration. `VerroConfig` derives
/// `Debug` over every field, so any knob that could change a byte of
/// output changes this fingerprint.
pub fn config_fingerprint(config: &VerroConfig) -> u64 {
    fnv1a(format!("{config:?}").as_bytes())
}

/// Folds one delivered frame into an input/output fingerprint: the frame
/// index pins the position, the raw raster bytes pin the content.
pub fn frame_fold(h: u64, k: usize, img: &ImageBuffer) -> u64 {
    let h = fnv1a_fold(h, &(k as u64).to_le_bytes());
    fnv1a_fold(h, img.bytes())
}

/// One committed segment: its display interval `[display_start,
/// display_end]` and the FNV-1a fold of its rendered frames (in ascending
/// frame order, via [`frame_fold`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentRecord {
    pub index: usize,
    pub display_start: usize,
    pub display_end: usize,
    pub fingerprint: u64,
}

/// The persistent journal of one checkpointed streaming run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunJournal {
    path: PathBuf,
    seed: u64,
    config_fp: u64,
    input_fp: u64,
    num_frames: usize,
    num_segments: usize,
    segments: Vec<SegmentRecord>,
    done: bool,
}

impl RunJournal {
    /// Starts a fresh journal at `path`, replacing any previous one, and
    /// commits the header durably before returning.
    pub fn create(
        path: impl Into<PathBuf>,
        seed: u64,
        config_fp: u64,
        input_fp: u64,
        num_frames: usize,
        num_segments: usize,
    ) -> Result<Self, VerroError> {
        let journal = Self {
            path: path.into(),
            seed,
            config_fp,
            input_fp,
            num_frames,
            num_segments,
            segments: Vec::new(),
            done: false,
        };
        journal.persist()?;
        Ok(journal)
    }

    /// Loads an existing journal. Any malformation — bad tag, missing
    /// field, out-of-order segment, trailing garbage — is a typed
    /// [`VerroError::JournalCorrupt`]; the loader never guesses.
    pub fn load(path: impl Into<PathBuf>) -> Result<Self, VerroError> {
        let path = path.into();
        let corrupt = |reason: String| VerroError::JournalCorrupt {
            path: path.display().to_string(),
            reason,
        };
        let text = std::fs::read_to_string(&path)
            .map_err(|e| corrupt(format!("cannot read journal: {e}")))?;
        let mut lines = text.lines();
        if lines.next() != Some(FORMAT) {
            return Err(corrupt(format!("missing format tag {FORMAT:?}")));
        }
        fn field<'a>(line: Option<&'a str>, name: &str) -> Result<&'a str, String> {
            let line = line.ok_or_else(|| format!("missing {name}"))?;
            line.strip_prefix(name)
                .and_then(|rest| rest.strip_prefix(' '))
                .ok_or_else(|| format!("expected `{name} <value>`, got `{line}`"))
        }
        let seed = field(lines.next(), "seed")
            .and_then(|v| v.parse::<u64>().map_err(|e| format!("bad seed: {e}")))
            .map_err(&corrupt)?;
        let config_fp = field(lines.next(), "config_fp")
            .and_then(|v| u64::from_str_radix(v, 16).map_err(|e| format!("bad config_fp: {e}")))
            .map_err(&corrupt)?;
        let input_fp = field(lines.next(), "input_fp")
            .and_then(|v| u64::from_str_radix(v, 16).map_err(|e| format!("bad input_fp: {e}")))
            .map_err(&corrupt)?;
        let num_frames = field(lines.next(), "frames")
            .and_then(|v| v.parse::<usize>().map_err(|e| format!("bad frames: {e}")))
            .map_err(&corrupt)?;
        let num_segments = field(lines.next(), "segments")
            .and_then(|v| v.parse::<usize>().map_err(|e| format!("bad segments: {e}")))
            .map_err(&corrupt)?;
        let mut segments: Vec<SegmentRecord> = Vec::new();
        let mut done = false;
        for line in lines {
            if done {
                return Err(corrupt("content after done marker".into()));
            }
            if line == "done" {
                done = true;
                continue;
            }
            let mut parts = line.split(' ');
            if parts.next() != Some("segment") {
                return Err(corrupt(format!("unrecognized line `{line}`")));
            }
            let mut next_num = |what: &str| -> Result<u64, VerroError> {
                parts
                    .next()
                    .ok_or_else(|| format!("segment line missing {what}"))
                    .and_then(|v| {
                        if what == "fingerprint" {
                            u64::from_str_radix(v, 16).map_err(|e| format!("bad {what}: {e}"))
                        } else {
                            v.parse::<u64>().map_err(|e| format!("bad {what}: {e}"))
                        }
                    })
                    .map_err(&corrupt)
            };
            let rec = SegmentRecord {
                index: next_num("index")? as usize,
                display_start: next_num("display_start")? as usize,
                display_end: next_num("display_end")? as usize,
                fingerprint: next_num("fingerprint")?,
            };
            if parts.next().is_some() {
                return Err(corrupt(format!("trailing tokens on `{line}`")));
            }
            if rec.index != segments.len() {
                return Err(corrupt(format!(
                    "segment {} recorded out of order (expected {})",
                    rec.index,
                    segments.len()
                )));
            }
            if rec.index >= num_segments || rec.display_end < rec.display_start {
                return Err(corrupt(format!("segment {} out of range", rec.index)));
            }
            segments.push(rec);
        }
        if done && segments.len() != num_segments {
            return Err(corrupt(format!(
                "done marker with {} of {num_segments} segments",
                segments.len()
            )));
        }
        Ok(Self {
            path,
            seed,
            config_fp,
            input_fp,
            num_frames,
            num_segments,
            segments,
            done,
        })
    }

    /// Checks the resumed run's identity against the journal. Any mismatch
    /// is a typed refusal — resuming under a different seed, config, or
    /// input would re-randomize, which the privacy accounting forbids.
    pub fn verify_run(
        &self,
        seed: u64,
        config_fp: u64,
        input_fp: u64,
        num_frames: usize,
        num_segments: usize,
    ) -> Result<(), VerroError> {
        let mismatch = |what: &str, expected: String, found: String| VerroError::ResumeMismatch {
            what: what.to_string(),
            expected,
            found,
        };
        if self.seed != seed {
            return Err(mismatch("seed", self.seed.to_string(), seed.to_string()));
        }
        if self.config_fp != config_fp {
            return Err(mismatch(
                "config fingerprint",
                format!("{:016x}", self.config_fp),
                format!("{config_fp:016x}"),
            ));
        }
        if self.input_fp != input_fp {
            return Err(mismatch(
                "input fingerprint",
                format!("{:016x}", self.input_fp),
                format!("{input_fp:016x}"),
            ));
        }
        if self.num_frames != num_frames {
            return Err(mismatch(
                "frame count",
                self.num_frames.to_string(),
                num_frames.to_string(),
            ));
        }
        if self.num_segments != num_segments {
            return Err(mismatch(
                "segment count",
                self.num_segments.to_string(),
                num_segments.to_string(),
            ));
        }
        Ok(())
    }

    /// Records the next committed segment and persists durably. Segments
    /// commit strictly in order; a gap means the caller lost track.
    pub fn record_segment(&mut self, rec: SegmentRecord) -> Result<(), VerroError> {
        if rec.index != self.segments.len() {
            return Err(VerroError::JournalCorrupt {
                path: self.path.display().to_string(),
                reason: format!(
                    "segment {} committed out of order (expected {})",
                    rec.index,
                    self.segments.len()
                ),
            });
        }
        self.segments.push(rec);
        if self.segments.len() == self.num_segments {
            self.done = true;
        }
        self.persist()
    }

    /// Atomically rewrites the journal file: temp → `sync_all` → rename.
    fn persist(&self) -> Result<(), VerroError> {
        let io_err = |e: std::io::Error| VerroError::JournalCorrupt {
            path: self.path.display().to_string(),
            reason: format!("cannot persist journal: {e}"),
        };
        let mut text = format!(
            "{FORMAT}\nseed {}\nconfig_fp {:016x}\ninput_fp {:016x}\nframes {}\nsegments {}\n",
            self.seed, self.config_fp, self.input_fp, self.num_frames, self.num_segments
        );
        for rec in &self.segments {
            text.push_str(&format!(
                "segment {} {} {} {:016x}\n",
                rec.index, rec.display_start, rec.display_end, rec.fingerprint
            ));
        }
        if self.done {
            text.push_str("done\n");
        }
        let tmp = self.path.with_extension("tmp");
        {
            let mut file = std::fs::File::create(&tmp).map_err(io_err)?;
            file.write_all(text.as_bytes()).map_err(io_err)?;
            file.sync_all().map_err(io_err)?;
        }
        std::fs::rename(&tmp, &self.path).map_err(io_err)
    }

    /// The file this journal persists to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Seed the run was started with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Segments committed so far, in order.
    pub fn segments(&self) -> &[SegmentRecord] {
        &self.segments
    }

    /// Total segments the run will produce.
    pub fn num_segments(&self) -> usize {
        self.num_segments
    }

    /// Whether every segment has committed.
    pub fn is_done(&self) -> bool {
        self.done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("verro-journal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    #[test]
    fn round_trips_and_completes() {
        let path = tmp("round.journal");
        let mut j = RunJournal::create(&path, 7, 0xabc, 0xdef, 60, 2).unwrap();
        assert!(!j.is_done());
        j.record_segment(SegmentRecord {
            index: 0,
            display_start: 0,
            display_end: 29,
            fingerprint: 0x1111,
        })
        .unwrap();
        let loaded = RunJournal::load(&path).unwrap();
        assert_eq!(loaded, j);
        assert_eq!(loaded.segments().len(), 1);
        j.record_segment(SegmentRecord {
            index: 1,
            display_start: 30,
            display_end: 59,
            fingerprint: 0x2222,
        })
        .unwrap();
        assert!(j.is_done());
        assert!(RunJournal::load(&path).unwrap().is_done());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn verify_refuses_every_mismatch_typed() {
        let path = tmp("verify.journal");
        let j = RunJournal::create(&path, 7, 10, 20, 60, 3).unwrap();
        j.verify_run(7, 10, 20, 60, 3).unwrap();
        for (seed, cfp, ifp, n, s) in [
            (8, 10, 20, 60, 3),
            (7, 11, 20, 60, 3),
            (7, 10, 21, 60, 3),
            (7, 10, 20, 61, 3),
            (7, 10, 20, 60, 4),
        ] {
            assert!(matches!(
                j.verify_run(seed, cfp, ifp, n, s),
                Err(VerroError::ResumeMismatch { .. })
            ));
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn tampered_files_are_refused_typed() {
        let path = tmp("tamper.journal");
        let mut j = RunJournal::create(&path, 7, 10, 20, 60, 2).unwrap();
        j.record_segment(SegmentRecord {
            index: 0,
            display_start: 0,
            display_end: 29,
            fingerprint: 0x1111,
        })
        .unwrap();
        let original = std::fs::read_to_string(&path).unwrap();
        for tamper in [
            original.replace("verro-journal-v1", "verro-journal-v9"),
            original.replace("seed 7", "seed banana"),
            original.replace("segment 0", "segment 1"),
            format!("{original}garbage line\n"),
            original.replace("segment 0 0 29", "segment 0 29 0"),
            String::new(),
        ] {
            std::fs::write(&path, &tamper).unwrap();
            assert!(
                matches!(
                    RunJournal::load(&path),
                    Err(VerroError::JournalCorrupt { .. })
                ),
                "accepted tampered journal: {tamper:?}"
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn out_of_order_commits_are_rejected() {
        let path = tmp("order.journal");
        let mut j = RunJournal::create(&path, 1, 2, 3, 10, 3).unwrap();
        let rec = SegmentRecord {
            index: 2,
            display_start: 0,
            display_end: 4,
            fingerprint: 1,
        };
        assert!(matches!(
            j.record_segment(rec),
            Err(VerroError::JournalCorrupt { .. })
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fnv_is_stable_and_order_sensitive() {
        assert_eq!(fnv1a(b""), fnv1a_seed());
        // Reference vector for 64-bit FNV-1a.
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_ne!(fnv1a(b"ab"), fnv1a(b"ba"));
        let img = ImageBuffer::new(
            verro_video::geometry::Size::new(4, 4),
            verro_video::color::Rgb::new(1, 2, 3),
        );
        assert_ne!(
            frame_fold(fnv1a_seed(), 0, &img),
            frame_fold(fnv1a_seed(), 1, &img)
        );
    }
}
