//! Phase I: optimal object presence (Section 3).
//!
//! Pipeline: presence matrix → key-frame dimension reduction → utility
//! maximizing frame picking (Equation 9) → randomized response (Equation 4)
//! on the picked dimensions. The result satisfies
//! `ε = ℓ*·ln((2−f)/f)`-Object Indistinguishability where `ℓ*` is the number
//! of picked frames (Theorem 3.4).

use crate::config::{NoiseLevel, OptimizerStrategy, VerroConfig};
use crate::error::VerroError;
use crate::optimize::{noisy_counts, pick_from_counts, PickResult};
use crate::presence::PresenceMatrix;
use rand::Rng;
use serde::{Deserialize, Serialize};
use verro_ldp::budget::{epsilon_of_flip, flip_for_epsilon, BudgetLedger};
use verro_ldp::rr::randomize_flip;
use verro_video::annotations::VideoAnnotations;
use verro_vision::keyframe::KeyFrameResult;

/// The complete result of Phase I.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Phase1Output {
    /// Global frame indices of all `ℓ` key frames.
    pub key_frames: Vec<usize>,
    /// Positions (into `key_frames`) of the picked frames.
    pub picked_positions: Vec<usize>,
    /// Global frame indices of the picked key frames (`ℓ*` of them).
    pub picked_frames: Vec<usize>,
    /// The flip probability `f` actually applied.
    pub flip: f64,
    /// Privacy guarantee of the randomized response:
    /// `ε = ℓ*·ln((2−f)/f)`.
    pub epsilon: f64,
    /// Presence matrix over the picked frames before randomization
    /// (`B*` in Section 3.4).
    pub original: PresenceMatrix,
    /// Randomized presence matrix over the picked frames (`R`).
    pub randomized: PresenceMatrix,
    /// The optimizer's internals (costs, objective).
    pub pick: PickResult,
    /// Itemized privacy spending (RR plus optional optimizer noise).
    pub ledger: BudgetLedger,
}

impl Phase1Output {
    /// Number of picked key frames `ℓ* = Σ_k x_k`.
    pub fn num_picked(&self) -> usize {
        self.picked_frames.len()
    }

    /// Objects retained by the randomization (non-empty `R_i`); lost objects
    /// cannot appear in the synthetic video (Section 4.2.1).
    pub fn retained_rows(&self) -> Vec<usize> {
        (0..self.randomized.num_objects())
            .filter(|&i| !self.randomized.row(i).all_zero())
            .collect()
    }

    /// Number of synthetic objects frame position `j` (into
    /// `picked_frames`) must receive: `Σ_i R_i^j`.
    pub fn required_in_picked(&self, j: usize) -> usize {
        self.randomized.column_count(j)
    }
}

/// Runs Phase I over ground-truth or tracked annotations.
///
/// `key_frames` must come from Algorithm 2 over the same video. The noise
/// level is resolved here: with [`NoiseLevel::EpsilonBudget`] the flip
/// probability `f = 2/(e^{ε/ℓ*}+1)` and the picked-frame count `ℓ*` are
/// solved jointly by a short fixed-point iteration (the optimizer's costs
/// depend on `f`, and `f` depends on how many frames were picked).
pub fn run_phase1<R: Rng + ?Sized>(
    annotations: &VideoAnnotations,
    key_frames: &KeyFrameResult,
    config: &VerroConfig,
    rng: &mut R,
) -> Result<Phase1Output, VerroError> {
    config.validate().map_err(VerroError::BadConfig)?;

    let matrix = PresenceMatrix::from_annotations(annotations);
    let kf: Vec<usize> = key_frames.key_frames();
    if kf.len() < config.min_picked {
        return Err(VerroError::TooFewKeyFrames {
            available: kf.len(),
            required: config.min_picked,
        });
    }
    let reduced = matrix.project(&kf);

    // The optimizer's counts are Laplace-released exactly once; the
    // budget-mode fixed point below re-optimizes over the same release.
    let counts = noisy_counts(&reduced, config.optimizer_noise_epsilon, rng)?;
    let n = reduced.num_objects();

    // Resolve the flip probability. In budget mode the selection and `f`
    // are mutually dependent (the FullDistortion costs depend on `f`, and
    // `f` depends on the number of picked frames), so iterate to a fixed
    // point — convergence is fast because `ℓ*` only takes integer values.
    let (pick, flip) = match config.noise {
        NoiseLevel::FlipProbability(f) => {
            let pick = pick_from_counts(
                &counts,
                n,
                f,
                config.optimizer,
                config.objective,
                config.min_picked,
            )?;
            (pick, f)
        }
        NoiseLevel::EpsilonBudget(eps) => {
            let mut f = 0.5;
            let mut pick = None;
            for _ in 0..8 {
                let p = pick_from_counts(
                    &counts,
                    n,
                    f,
                    config.optimizer,
                    config.objective,
                    config.min_picked,
                )?;
                let new_f = flip_for_epsilon(p.count(), eps)?;
                let stable = (new_f - f).abs() < 1e-12;
                f = new_f;
                pick = Some(p);
                if stable {
                    break;
                }
            }
            (pick.expect("at least one iteration ran"), f)
        }
    };

    let picked_positions = pick.indices();
    let picked_frames: Vec<usize> = picked_positions.iter().map(|&j| kf[j]).collect();
    let ell_star = picked_frames.len();

    let original = matrix.project(&picked_frames);
    let randomized_rows = original
        .rows()
        .iter()
        .map(|row| randomize_flip(row, flip, rng))
        .collect::<Result<Vec<_>, _>>()?;
    let randomized = PresenceMatrix::from_rows(
        original.ids().to_vec(),
        randomized_rows,
        original.num_frames(),
    );

    let epsilon = epsilon_of_flip(ell_star, flip)?;
    let mut ledger = BudgetLedger::new();
    ledger.spend("phase1-randomized-response", epsilon);
    if config.optimizer_noise_epsilon.is_some()
        && config.optimizer != OptimizerStrategy::AllKeyFrames
    {
        ledger.spend(
            "optimizer-count-laplace",
            config.optimizer_noise_epsilon.unwrap_or(0.0),
        );
    }

    Ok(Phase1Output {
        key_frames: kf,
        picked_positions,
        picked_frames,
        flip,
        epsilon,
        original,
        randomized,
        pick,
        ledger,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use verro_video::geometry::BBox;
    use verro_video::object::{ObjectClass, ObjectId};
    use verro_vision::keyframe::Segment;

    fn annotations() -> VideoAnnotations {
        let mut ann = VideoAnnotations::new(30);
        let b = |x: f64| BBox::new(x, 10.0, 4.0, 8.0);
        for i in 0..6u32 {
            let start = (i as usize) * 3;
            for k in start..(start + 12).min(30) {
                ann.record(ObjectId(i), ObjectClass::Pedestrian, k, b(k as f64));
            }
        }
        ann
    }

    fn key_frames(frames: &[usize]) -> KeyFrameResult {
        KeyFrameResult {
            segments: frames.iter().map(|&k| Segment::new(vec![k], k)).collect(),
        }
    }

    fn config() -> VerroConfig {
        let mut c = VerroConfig::default().with_flip(0.2);
        c.optimizer_noise_epsilon = None; // deterministic costs in tests
        c
    }

    #[test]
    fn output_dimensions_consistent() {
        let mut rng = StdRng::seed_from_u64(1);
        let ann = annotations();
        let kf = key_frames(&[2, 8, 14, 20, 26]);
        let out = run_phase1(&ann, &kf, &config(), &mut rng).unwrap();
        assert_eq!(out.key_frames, vec![2, 8, 14, 20, 26]);
        assert!(out.num_picked() >= 2);
        assert_eq!(out.original.num_frames(), out.num_picked());
        assert_eq!(out.randomized.num_frames(), out.num_picked());
        assert_eq!(out.original.num_objects(), 6);
        // Picked frames are a subset of key frames in order.
        for w in out.picked_frames.windows(2) {
            assert!(w[0] < w[1]);
        }
        for pf in &out.picked_frames {
            assert!(out.key_frames.contains(pf));
        }
    }

    #[test]
    fn epsilon_matches_formula() {
        let mut rng = StdRng::seed_from_u64(2);
        let ann = annotations();
        let kf = key_frames(&[2, 8, 14, 20, 26]);
        let out = run_phase1(&ann, &kf, &config(), &mut rng).unwrap();
        let expect = out.num_picked() as f64 * ((2.0 - 0.2f64) / 0.2).ln();
        assert!((out.epsilon - expect).abs() < 1e-12);
        assert!((out.ledger.total() - out.epsilon).abs() < 1e-12);
    }

    #[test]
    fn epsilon_budget_mode_derives_flip() {
        let mut rng = StdRng::seed_from_u64(3);
        let ann = annotations();
        let kf = key_frames(&[2, 8, 14, 20, 26]);
        let mut cfg = config().with_epsilon(6.0);
        cfg.optimizer_noise_epsilon = None;
        let out = run_phase1(&ann, &kf, &cfg, &mut rng).unwrap();
        // Realized RR epsilon equals the requested budget.
        assert!(
            (out.epsilon - 6.0).abs() < 1e-9,
            "epsilon = {}",
            out.epsilon
        );
        assert!(out.flip > 0.0 && out.flip < 1.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let ann = annotations();
        let kf = key_frames(&[2, 8, 14, 20, 26]);
        let mut r1 = StdRng::seed_from_u64(42);
        let mut r2 = StdRng::seed_from_u64(42);
        let a = run_phase1(&ann, &kf, &config(), &mut r1).unwrap();
        let b = run_phase1(&ann, &kf, &config(), &mut r2).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn low_flip_preserves_most_presence() {
        let mut rng = StdRng::seed_from_u64(4);
        let ann = annotations();
        let kf = key_frames(&[2, 8, 14, 20, 26]);
        let mut cfg = config().with_flip(0.05);
        cfg.optimizer = OptimizerStrategy::AllKeyFrames;
        let out = run_phase1(&ann, &kf, &cfg, &mut rng).unwrap();
        let total_flips: usize = out
            .original
            .rows()
            .iter()
            .zip(out.randomized.rows())
            .map(|(a, b)| a.hamming(b))
            .sum();
        let total_bits = out.original.num_objects() * out.original.num_frames();
        assert!(
            (total_flips as f64) < 0.2 * total_bits as f64,
            "{total_flips}/{total_bits} flips at f = 0.05"
        );
    }

    #[test]
    fn retained_rows_reflect_randomized_matrix() {
        let mut rng = StdRng::seed_from_u64(5);
        let ann = annotations();
        let kf = key_frames(&[2, 8, 14, 20, 26]);
        let out = run_phase1(&ann, &kf, &config(), &mut rng).unwrap();
        for &i in &out.retained_rows() {
            assert!(!out.randomized.row(i).all_zero());
        }
        let required_total: usize = (0..out.num_picked())
            .map(|j| out.required_in_picked(j))
            .sum();
        let ones_total: usize = out.randomized.rows().iter().map(|r| r.count_ones()).sum();
        assert_eq!(required_total, ones_total);
    }

    #[test]
    fn too_few_key_frames_rejected() {
        let mut rng = StdRng::seed_from_u64(6);
        let ann = annotations();
        let kf = key_frames(&[5]);
        assert!(matches!(
            run_phase1(&ann, &kf, &config(), &mut rng),
            Err(VerroError::TooFewKeyFrames { .. })
        ));
    }

    #[test]
    fn invalid_config_rejected() {
        let mut rng = StdRng::seed_from_u64(7);
        let ann = annotations();
        let kf = key_frames(&[2, 8]);
        let cfg = config().with_flip(2.0);
        assert!(matches!(
            run_phase1(&ann, &kf, &cfg, &mut rng),
            Err(VerroError::BadConfig(_))
        ));
    }
}
