//! Object presence matrices (Definition 3.1).
//!
//! For a video of `m` frames with `n` objects, the presence matrix stacks
//! one `m`-bit vector per object: bit `k` of row `i` says whether object
//! `O_i` appears in frame `F_k`. This is the "local data" Phase I
//! randomizes.

use crate::error::VerroError;
use serde::{Deserialize, Serialize};
use verro_ldp::bitvec::BitVec;
use verro_video::annotations::VideoAnnotations;
use verro_video::object::ObjectId;

/// The presence matrix of a video: one bit vector per object, all of the
/// same length.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PresenceMatrix {
    /// Object IDs in row order.
    ids: Vec<ObjectId>,
    /// One presence vector per object.
    rows: Vec<BitVec>,
    /// Number of frames (columns).
    num_frames: usize,
}

impl PresenceMatrix {
    /// Builds the presence matrix from annotations.
    pub fn from_annotations(ann: &VideoAnnotations) -> Self {
        let m = ann.num_frames();
        let mut ids = Vec::with_capacity(ann.num_objects());
        let mut rows = Vec::with_capacity(ann.num_objects());
        for track in ann.tracks() {
            let mut row = BitVec::zeros(m);
            for obs in track.observations() {
                row.set(obs.frame, true);
            }
            ids.push(track.id);
            rows.push(row);
        }
        Self {
            ids,
            rows,
            num_frames: m,
        }
    }

    /// Builds directly from rows (tests and intermediate stages).
    pub fn from_rows(ids: Vec<ObjectId>, rows: Vec<BitVec>, num_frames: usize) -> Self {
        assert_eq!(ids.len(), rows.len(), "one id per row");
        assert!(
            rows.iter().all(|r| r.len() == num_frames),
            "all rows must have {num_frames} bits"
        );
        Self {
            ids,
            rows,
            num_frames,
        }
    }

    /// Number of objects `n`.
    pub fn num_objects(&self) -> usize {
        self.rows.len()
    }

    /// Number of frames (columns).
    pub fn num_frames(&self) -> usize {
        self.num_frames
    }

    /// Object IDs in row order.
    pub fn ids(&self) -> &[ObjectId] {
        &self.ids
    }

    /// The presence vector of row `i`.
    pub fn row(&self, i: usize) -> &BitVec {
        &self.rows[i]
    }

    /// All rows.
    pub fn rows(&self) -> &[BitVec] {
        &self.rows
    }

    /// Count of objects present in column (frame) `k`: `Σ_i b_i^k`.
    pub fn column_count(&self, k: usize) -> usize {
        self.rows.iter().filter(|r| r.get(k)).count()
    }

    /// Per-column counts for all frames.
    pub fn column_counts(&self) -> Vec<usize> {
        (0..self.num_frames).map(|k| self.column_count(k)).collect()
    }

    /// Projects every row onto the given frame positions (dimension
    /// reduction onto key frames, Section 3.2): the result has
    /// `positions.len()` columns. Positions come from the pipeline's own
    /// key-frame picker, so an out-of-range position is a bug — asserted.
    /// Surfaces fed positions from outside (query scopes, CLI input) should
    /// use [`Self::try_project`] instead.
    pub fn project(&self, positions: &[usize]) -> PresenceMatrix {
        for &p in positions {
            assert!(p < self.num_frames, "frame {p} out of range");
        }
        self.project_unchecked(positions)
    }

    /// Fallible projection for externally supplied positions: returns
    /// [`VerroError::FrameOutOfRange`] naming the first offending position
    /// instead of panicking.
    pub fn try_project(&self, positions: &[usize]) -> Result<PresenceMatrix, VerroError> {
        if let Some(&p) = positions.iter().find(|&&p| p >= self.num_frames) {
            return Err(VerroError::FrameOutOfRange {
                frame: p,
                num_frames: self.num_frames,
            });
        }
        Ok(self.project_unchecked(positions))
    }

    /// Projection body; callers guarantee every position is in range.
    fn project_unchecked(&self, positions: &[usize]) -> PresenceMatrix {
        PresenceMatrix {
            ids: self.ids.clone(),
            rows: self.rows.iter().map(|r| r.project(positions)).collect(),
            num_frames: positions.len(),
        }
    }

    /// Number of objects whose row is non-empty (present somewhere).
    pub fn distinct_present(&self) -> usize {
        self.rows.iter().filter(|r| !r.all_zero()).count()
    }

    /// IDs of the objects with non-empty rows.
    pub fn present_ids(&self) -> Vec<ObjectId> {
        self.ids
            .iter()
            .zip(&self.rows)
            .filter(|(_, r)| !r.all_zero())
            .map(|(id, _)| *id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use verro_video::geometry::BBox;
    use verro_video::object::ObjectClass;

    fn sample() -> PresenceMatrix {
        let mut ann = VideoAnnotations::new(6);
        let b = BBox::new(0.0, 0.0, 2.0, 4.0);
        for k in 0..3 {
            ann.record(ObjectId(0), ObjectClass::Pedestrian, k, b);
        }
        for k in 2..6 {
            ann.record(ObjectId(1), ObjectClass::Pedestrian, k, b);
        }
        PresenceMatrix::from_annotations(&ann)
    }

    #[test]
    fn builds_from_annotations() {
        let m = sample();
        assert_eq!(m.num_objects(), 2);
        assert_eq!(m.num_frames(), 6);
        assert_eq!(m.row(0).to_string(), "111000");
        assert_eq!(m.row(1).to_string(), "001111");
        assert_eq!(m.ids(), &[ObjectId(0), ObjectId(1)]);
    }

    #[test]
    fn column_counts() {
        let m = sample();
        assert_eq!(m.column_counts(), vec![1, 1, 2, 1, 1, 1]);
        assert_eq!(m.column_count(2), 2);
    }

    #[test]
    fn projection_reduces_dimension() {
        let m = sample();
        let p = m.project(&[0, 2, 5]);
        assert_eq!(p.num_frames(), 3);
        assert_eq!(p.row(0).to_string(), "110");
        assert_eq!(p.row(1).to_string(), "011");
    }

    #[test]
    fn distinct_present_counts_nonempty_rows() {
        let m = sample();
        assert_eq!(m.distinct_present(), 2);
        // Project onto frames where only object 1 appears.
        let p = m.project(&[4, 5]);
        assert_eq!(p.distinct_present(), 1);
        assert_eq!(p.present_ids(), vec![ObjectId(1)]);
    }

    #[test]
    #[should_panic]
    fn project_rejects_out_of_range() {
        sample().project(&[9]);
    }

    #[test]
    fn try_project_returns_typed_error() {
        let m = sample();
        assert_eq!(
            m.try_project(&[0, 9]),
            Err(VerroError::FrameOutOfRange {
                frame: 9,
                num_frames: 6
            })
        );
        // In-range positions agree with the asserting variant.
        let p = m.try_project(&[0, 2, 5]).unwrap();
        assert_eq!(p, m.project(&[0, 2, 5]));
        // Empty projection is valid: zero columns.
        assert_eq!(m.try_project(&[]).unwrap().num_frames(), 0);
    }

    #[test]
    #[should_panic]
    fn from_rows_checks_lengths() {
        PresenceMatrix::from_rows(vec![ObjectId(0)], vec![BitVec::zeros(3)], 4);
    }
}
