//! Utility metrics — the quantities plotted in the paper's Section 6.
//!
//! * Count of distinct objects after OPT and after RR (Figure 5 a/c/e);
//! * Trajectory deviation between original and synthetic videos
//!   (Figure 5 b/d/f): the paper's *signed* relative metric (placement
//!   errors cancel across objects; missing replacements contribute 1.0),
//!   plus a strict absolute variant where errors cannot cancel;
//! * Per-frame object counts (Figures 12 and 13) and their mean absolute
//!   error against the original.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use verro_video::annotations::VideoAnnotations;
use verro_video::object::ObjectId;

/// Trajectory deviation per the paper's Section 6.2.2 metric:
///
/// ```text
/// (1/N) | Σ_i Σ_k (P(O_i, F_k) − P(σ(O_i), F*_k)) / P(O_i, F_k) |
/// ```
///
/// summed over all frames `k` where the original object is present. The
/// paper's formula carries **no inner absolute value**: per-frame relative
/// coordinate errors are *signed* (measured here on the center-coordinate
/// magnitudes), so random placement errors cancel in aggregate — which is
/// what lets the metric drop to the 0.02–0.2 range after Phase II even
/// though individual replacements sit at other objects' positions. A
/// missing replacement contributes `1.0` (complete loss), which is also the
/// value every pair takes before interpolation — hence "deviation before
/// Phase II is higher than 0.9".
pub fn trajectory_deviation(
    original: &VideoAnnotations,
    synthetic: &VideoAnnotations,
    mapping: &BTreeMap<ObjectId, ObjectId>,
) -> f64 {
    let mut total = 0.0;
    let mut count = 0usize;
    for track in original.tracks() {
        let synth_track = mapping.get(&track.id).and_then(|sid| synthetic.track(*sid));
        for obs in track.observations() {
            let p = obs.bbox.center();
            let denom = p.norm().max(1e-9);
            let contribution = match synth_track.and_then(|t| t.at_frame(obs.frame)) {
                Some(synth_obs) => {
                    let q = synth_obs.bbox.center();
                    (denom - q.norm()) / denom
                }
                None => 1.0,
            };
            total += contribution;
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        (total / count as f64).abs()
    }
}

/// Strict (absolute) variant of the deviation: mean relative Euclidean
/// distance between each original center and its replacement, with `1.0`
/// for missing replacements and per-pair contributions capped at `1.0`.
/// Unlike [`trajectory_deviation`], errors cannot cancel — this is the
/// harsher headline number we report alongside the paper's metric.
pub fn trajectory_deviation_absolute(
    original: &VideoAnnotations,
    synthetic: &VideoAnnotations,
    mapping: &BTreeMap<ObjectId, ObjectId>,
) -> f64 {
    let mut total = 0.0;
    let mut count = 0usize;
    for track in original.tracks() {
        let synth_track = mapping.get(&track.id).and_then(|sid| synthetic.track(*sid));
        for obs in track.observations() {
            let p = obs.bbox.center();
            let denom = p.norm().max(1e-9);
            let contribution = match synth_track.and_then(|t| t.at_frame(obs.frame)) {
                Some(synth_obs) => (p.distance(&synth_obs.bbox.center()) / denom).min(1.0),
                None => 1.0,
            };
            total += contribution;
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

/// Mean absolute error between the original and synthetic per-frame object
/// counts (the aggregation utility of Figures 12/13).
pub fn count_mae(original: &VideoAnnotations, synthetic: &VideoAnnotations) -> f64 {
    // Comparing misaligned videos is a caller bug; release builds score
    // the overlapping prefix rather than panic.
    debug_assert_eq!(
        original.num_frames(),
        synthetic.num_frames(),
        "videos must have equal length"
    );
    let a = original.per_frame_counts();
    let b = synthetic.per_frame_counts();
    let n = a.len().min(b.len());
    if n == 0 {
        return 0.0;
    }
    a.iter()
        .zip(&b)
        .map(|(x, y)| (*x as f64 - *y as f64).abs())
        .sum::<f64>()
        / n as f64
}

/// One object's trajectory as `(frame, x, y)` center samples — the series
/// plotted in Figures 6–8.
pub fn trajectory_series(ann: &VideoAnnotations, id: ObjectId) -> Vec<(usize, f64, f64)> {
    ann.track(id)
        .map(|t| {
            t.observations()
                .iter()
                .map(|o| {
                    let c = o.bbox.center();
                    (o.frame, c.x, c.y)
                })
                .collect()
        })
        .unwrap_or_default()
}

/// Utility summary of a full sanitization run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UtilityReport {
    /// Objects in the original video.
    pub original_objects: usize,
    /// Objects retained in the synthetic video.
    pub retained_objects: usize,
    /// Trajectory deviation — the paper's signed Section 6.2.2 metric.
    pub trajectory_deviation: f64,
    /// Strict absolute-deviation variant (errors cannot cancel).
    pub trajectory_deviation_abs: f64,
    /// Per-frame count MAE.
    pub count_mae: f64,
}

impl UtilityReport {
    /// Computes the summary from the pipeline artifacts.
    pub fn compute(
        original: &VideoAnnotations,
        synthetic: &VideoAnnotations,
        mapping: &BTreeMap<ObjectId, ObjectId>,
    ) -> Self {
        Self {
            original_objects: original.num_objects(),
            retained_objects: synthetic.num_objects(),
            trajectory_deviation: trajectory_deviation(original, synthetic, mapping),
            trajectory_deviation_abs: trajectory_deviation_absolute(original, synthetic, mapping),
            count_mae: count_mae(original, synthetic),
        }
    }

    /// Fraction of objects retained.
    pub fn retention(&self) -> f64 {
        if self.original_objects == 0 {
            return 1.0;
        }
        self.retained_objects as f64 / self.original_objects as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use verro_video::geometry::BBox;
    use verro_video::object::ObjectClass;

    fn line_annotations(
        id: u32,
        frames: std::ops::Range<usize>,
        offset: f64,
        m: usize,
    ) -> VideoAnnotations {
        let mut ann = VideoAnnotations::new(m);
        for k in frames {
            ann.record(
                ObjectId(id),
                ObjectClass::Pedestrian,
                k,
                BBox::from_center(
                    verro_video::geometry::Point::new(10.0 + k as f64 * 5.0 + offset, 50.0),
                    4.0,
                    8.0,
                ),
            );
        }
        ann
    }

    #[test]
    fn identical_trajectories_have_zero_deviation() {
        let orig = line_annotations(0, 0..10, 0.0, 10);
        let synth = line_annotations(0, 0..10, 0.0, 10);
        // Rename the synthetic object to id 5 and map.
        let track = synth.track(ObjectId(0)).unwrap().clone();
        let mut renamed = VideoAnnotations::new(10);
        for o in track.observations() {
            renamed.record(ObjectId(5), track.class, o.frame, o.bbox);
        }
        let mapping = BTreeMap::from([(ObjectId(0), ObjectId(5))]);
        assert_eq!(trajectory_deviation(&orig, &renamed, &mapping), 0.0);
        assert_eq!(
            trajectory_deviation_absolute(&orig, &renamed, &mapping),
            0.0
        );
    }

    #[test]
    fn missing_replacement_gives_full_deviation() {
        let orig = line_annotations(0, 0..10, 0.0, 10);
        let synth = VideoAnnotations::new(10);
        let mapping = BTreeMap::new();
        assert_eq!(trajectory_deviation(&orig, &synth, &mapping), 1.0);
    }

    #[test]
    fn small_offset_gives_small_deviation() {
        let m = 10;
        let orig = line_annotations(0, 0..10, 0.0, m);
        let shifted = line_annotations(0, 0..10, 3.0, m);
        let mapping = BTreeMap::from([(ObjectId(0), ObjectId(0))]);
        let dev = trajectory_deviation(&orig, &shifted, &mapping);
        assert!((0.0..0.2).contains(&dev), "signed deviation = {dev}");
        let dev_abs = trajectory_deviation_absolute(&orig, &shifted, &mapping);
        assert!(
            dev_abs > 0.0 && dev_abs < 0.2,
            "absolute deviation = {dev_abs}"
        );
        // The signed metric never exceeds the absolute one.
        assert!(dev <= dev_abs + 1e-12);
    }

    #[test]
    fn partial_presence_mixes_loss_and_match() {
        let m = 10;
        let orig = line_annotations(0, 0..10, 0.0, m);
        let partial = line_annotations(0, 0..5, 0.0, m);
        let mapping = BTreeMap::from([(ObjectId(0), ObjectId(0))]);
        let dev = trajectory_deviation(&orig, &partial, &mapping);
        // 5 frames match perfectly (0) and 5 are lost (1): mean 0.5.
        assert!((dev - 0.5).abs() < 1e-9);
    }

    #[test]
    fn signed_metric_cancels_symmetric_errors() {
        // Two objects displaced in opposite directions: the signed paper
        // metric cancels, the absolute variant does not.
        let m = 10;
        let mut orig = line_annotations(0, 0..10, 0.0, m);
        let plus = line_annotations(1, 0..10, 4.0, m);
        for o in plus.track(ObjectId(1)).unwrap().observations() {
            orig.record(ObjectId(1), ObjectClass::Pedestrian, o.frame, o.bbox);
        }
        let mut synth = line_annotations(0, 0..10, 4.0, m); // +4
        let minus = line_annotations(1, 0..10, -4.0, m); // -4 relative to +4
        for o in minus.track(ObjectId(1)).unwrap().observations() {
            synth.record(ObjectId(1), ObjectClass::Pedestrian, o.frame, o.bbox);
        }
        let mapping = BTreeMap::from([(ObjectId(0), ObjectId(0)), (ObjectId(1), ObjectId(1))]);
        let signed = trajectory_deviation(&orig, &synth, &mapping);
        let absolute = trajectory_deviation_absolute(&orig, &synth, &mapping);
        assert!(signed < absolute, "signed {signed} vs absolute {absolute}");
        assert!(signed < 0.05, "opposite errors should cancel: {signed}");
    }

    #[test]
    fn count_mae_measures_difference() {
        let orig = line_annotations(0, 0..10, 0.0, 10);
        let synth = line_annotations(0, 0..5, 0.0, 10);
        assert!((count_mae(&orig, &synth) - 0.5).abs() < 1e-12);
        assert_eq!(count_mae(&orig, &orig), 0.0);
    }

    #[test]
    fn trajectory_series_extracts_centers() {
        let ann = line_annotations(3, 2..5, 0.0, 10);
        let series = trajectory_series(&ann, ObjectId(3));
        assert_eq!(series.len(), 3);
        assert_eq!(series[0].0, 2);
        assert!((series[0].1 - 20.0).abs() < 1e-9);
        assert!(trajectory_series(&ann, ObjectId(9)).is_empty());
    }

    #[test]
    fn utility_report_retention() {
        let orig = line_annotations(0, 0..10, 0.0, 10);
        let synth = line_annotations(0, 0..10, 1.0, 10);
        let mapping = BTreeMap::from([(ObjectId(0), ObjectId(0))]);
        let r = UtilityReport::compute(&orig, &synth, &mapping);
        assert_eq!(r.original_objects, 1);
        assert_eq!(r.retained_objects, 1);
        assert_eq!(r.retention(), 1.0);
        assert!(r.trajectory_deviation < 0.05);
    }
}
