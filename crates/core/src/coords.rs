//! Phase II random coordinate assignment (Section 4.2).
//!
//! For each picked key frame `F*_k`, `Σ_i R_i^k` synthetic objects must be
//! inserted. Coordinates come from the *candidate pool* — the coordinates
//! of all original objects in `F_k`. When the pool is too small (random
//! response generated more presences than the original frame held), it is
//! expanded with the candidates of neighboring frames in the same segment;
//! if still insufficient, existing candidates are duplicated with a small
//! jitter (a measure-zero deviation from the paper, which assumes the
//! expanded pool always suffices).

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use verro_video::annotations::VideoAnnotations;
use verro_video::geometry::{BBox, Point};
use verro_vision::keyframe::KeyFrameResult;

/// One candidate placement: the center coordinates and the box extents of
/// an original object observation (the extents keep the perspective rule —
/// "larger when closer to the camera" — for free).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Candidate {
    pub center: Point,
    pub w: f64,
    pub h: f64,
}

impl Candidate {
    /// Candidate from an observed bounding box.
    pub fn from_bbox(b: BBox) -> Self {
        Self {
            center: b.center(),
            w: b.w,
            h: b.h,
        }
    }

    /// The bounding box this candidate describes.
    pub fn bbox(&self) -> BBox {
        BBox::from_center(self.center, self.w, self.h)
    }
}

/// The candidate pool of one frame: every original object's placement.
pub fn candidate_pool(annotations: &VideoAnnotations, frame: usize) -> Vec<Candidate> {
    annotations
        .in_frame(frame)
        .into_iter()
        .map(|(_, bbox)| Candidate::from_bbox(bbox))
        .collect()
}

/// Expands a key frame's pool with neighboring frames of its segment,
/// sweeping outwards from the key frame, until at least `required`
/// candidates are available or the segment is exhausted.
pub fn expanded_pool(
    annotations: &VideoAnnotations,
    key_frames: &KeyFrameResult,
    key_frame: usize,
    required: usize,
) -> Vec<Candidate> {
    let mut pool = candidate_pool(annotations, key_frame);
    if pool.len() >= required {
        return pool;
    }
    let Some(seg_idx) = key_frames.segment_of(key_frame) else {
        return pool;
    };
    let seg = &key_frames.segments[seg_idx];
    // Sweep outwards: key_frame ± 1, ± 2, … restricted to the segment range.
    let (start, end) = (seg.start(), seg.end());
    let mut offset = 1usize;
    while pool.len() < required {
        let mut advanced = false;
        if key_frame >= offset && key_frame - offset >= start {
            pool.extend(candidate_pool(annotations, key_frame - offset));
            advanced = true;
        }
        if key_frame + offset <= end {
            pool.extend(candidate_pool(annotations, key_frame + offset));
            advanced = true;
        }
        if !advanced {
            break;
        }
        offset += 1;
    }
    pool
}

/// The coordinate assignment of one picked key frame: for each retained
/// object row that is present there, its assigned candidate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrameAssignment {
    /// Global frame index of the picked key frame.
    pub frame: usize,
    /// `(object_row, candidate)` pairs.
    pub placements: Vec<(usize, Candidate)>,
}

/// Assigns candidates to the rows present in a frame: shuffles the pool,
/// draws `rows.len()` distinct candidates (jitter-duplicating when the pool
/// is smaller), and pairs them with a random permutation of the rows. The
/// same randomized procedure applies to every object, which is what makes
/// the assignment privacy-neutral (Theorem 4.1).
///
/// A completely empty pool (no object anywhere in the segment — the
/// neighbor-frame expansion already ran) suppresses the frame's placements
/// instead of inventing coordinates: the affected rows simply receive no
/// knot here, exactly as if randomized response had flipped their bit off
/// (Section 4). ε accounting is unaffected — suppression is
/// post-processing of the already-randomized matrix.
pub fn assign_frame<R: Rng + ?Sized>(
    frame: usize,
    rows: &[usize],
    pool: &[Candidate],
    frame_size: verro_video::geometry::Size,
    rng: &mut R,
) -> FrameAssignment {
    let mut placements = Vec::with_capacity(rows.len());
    if rows.is_empty() || pool.is_empty() {
        return FrameAssignment { frame, placements };
    }

    let mut candidates: Vec<Candidate> = pool.to_vec();
    candidates.shuffle(rng);

    // Jitter-duplicate when the pool is insufficient.
    while candidates.len() < rows.len() {
        let base = pool[rng.gen_range(0..pool.len())];
        let jitter_x = rng.gen_range(-0.05..0.05) * frame_size.width as f64;
        let jitter_y = rng.gen_range(-0.02..0.02) * frame_size.height as f64;
        candidates.push(Candidate {
            center: Point::new(base.center.x + jitter_x, base.center.y + jitter_y)
                .clamp_to(frame_size),
            ..base
        });
    }

    let mut shuffled_rows: Vec<usize> = rows.to_vec();
    shuffled_rows.shuffle(rng);
    for (row, cand) in shuffled_rows.into_iter().zip(candidates) {
        placements.push((row, cand));
    }
    placements.sort_by_key(|(row, _)| *row);
    FrameAssignment { frame, placements }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use verro_video::geometry::Size;
    use verro_video::object::{ObjectClass, ObjectId};
    use verro_vision::keyframe::Segment;

    fn annotations() -> VideoAnnotations {
        let mut ann = VideoAnnotations::new(10);
        ann.record(
            ObjectId(0),
            ObjectClass::Pedestrian,
            4,
            BBox::new(10.0, 20.0, 4.0, 8.0),
        );
        ann.record(
            ObjectId(1),
            ObjectClass::Pedestrian,
            4,
            BBox::new(40.0, 22.0, 5.0, 9.0),
        );
        ann.record(
            ObjectId(2),
            ObjectClass::Pedestrian,
            3,
            BBox::new(70.0, 30.0, 6.0, 10.0),
        );
        ann.record(
            ObjectId(2),
            ObjectClass::Pedestrian,
            5,
            BBox::new(75.0, 30.0, 6.0, 10.0),
        );
        ann
    }

    fn keyframes() -> KeyFrameResult {
        KeyFrameResult {
            segments: vec![Segment::new((0..10).collect(), 4)],
        }
    }

    #[test]
    fn candidate_pool_lists_frame_objects() {
        let pool = candidate_pool(&annotations(), 4);
        assert_eq!(pool.len(), 2);
        assert!(pool.iter().any(|c| (c.center.x - 12.0).abs() < 1e-9));
        let b = pool[0].bbox();
        assert!(b.w > 0.0 && b.h > 0.0);
    }

    #[test]
    fn expansion_pulls_from_neighbors() {
        let ann = annotations();
        let kf = keyframes();
        // Frame 4 has 2 candidates; require 4 → neighbors 3 and 5 add one
        // each.
        let pool = expanded_pool(&ann, &kf, 4, 4);
        assert_eq!(pool.len(), 4);
        // Requiring more than exists in the whole segment returns everything.
        let pool = expanded_pool(&ann, &kf, 4, 100);
        assert_eq!(pool.len(), 4);
    }

    #[test]
    fn no_expansion_when_sufficient() {
        let pool = expanded_pool(&annotations(), &keyframes(), 4, 2);
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn assignment_covers_all_rows() {
        let mut rng = StdRng::seed_from_u64(1);
        let pool = candidate_pool(&annotations(), 4);
        let a = assign_frame(4, &[0, 2, 5], &pool, Size::new(100, 100), &mut rng);
        assert_eq!(a.placements.len(), 3);
        let rows: Vec<usize> = a.placements.iter().map(|(r, _)| *r).collect();
        assert_eq!(rows, vec![0, 2, 5]);
    }

    #[test]
    fn jitter_duplication_when_pool_small() {
        let mut rng = StdRng::seed_from_u64(2);
        let pool = vec![Candidate {
            center: Point::new(50.0, 50.0),
            w: 4.0,
            h: 8.0,
        }];
        let size = Size::new(100, 100);
        let a = assign_frame(0, &[0, 1, 2], &pool, size, &mut rng);
        assert_eq!(a.placements.len(), 3);
        for (_, c) in &a.placements {
            assert!(size.contains(c.center) || c.center.x == 100.0 || c.center.y == 100.0);
        }
    }

    #[test]
    fn empty_pool_suppresses_placements() {
        // No candidates anywhere in the segment: the frame's insertions are
        // suppressed rather than invented (degraded mode, Section 4).
        let mut rng = StdRng::seed_from_u64(3);
        let size = Size::new(200, 100);
        let a = assign_frame(0, &[0, 1], &[], size, &mut rng);
        assert!(a.placements.is_empty());
    }

    #[test]
    fn empty_rows_empty_assignment() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = assign_frame(0, &[], &[], Size::new(10, 10), &mut rng);
        assert!(a.placements.is_empty());
    }

    #[test]
    fn assignment_is_a_random_bijection() {
        // Over many trials, each row receives each candidate with roughly
        // equal frequency — the "same randomization for all objects"
        // property underlying Theorem 4.1.
        let pool = vec![
            Candidate {
                center: Point::new(10.0, 10.0),
                w: 1.0,
                h: 1.0,
            },
            Candidate {
                center: Point::new(90.0, 90.0),
                w: 1.0,
                h: 1.0,
            },
        ];
        let mut rng = StdRng::seed_from_u64(5);
        let mut row0_got_first = 0;
        let trials = 4000;
        for _ in 0..trials {
            let a = assign_frame(0, &[0, 1], &pool, Size::new(100, 100), &mut rng);
            let c = a.placements.iter().find(|(r, _)| *r == 0).unwrap().1;
            if (c.center.x - 10.0).abs() < 1e-9 {
                row0_got_first += 1;
            }
        }
        let frac = row0_got_first as f64 / trials as f64;
        assert!((frac - 0.5).abs() < 0.05, "frac = {frac}");
    }
}
