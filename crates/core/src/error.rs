//! Error type for the VERRO pipeline.

use verro_lp::BipError;

/// Failures surfaced by the sanitizer.
#[derive(Debug, Clone, PartialEq)]
pub enum VerroError {
    /// The input video has no frames.
    EmptyVideo,
    /// The configuration is inconsistent (message explains).
    BadConfig(String),
    /// Key-frame extraction produced fewer frames than the minimum the
    /// optimizer must pick (the paper requires at least 2 for
    /// interpolation).
    TooFewKeyFrames { available: usize, required: usize },
    /// The Phase I optimizer failed.
    Optimizer(BipError),
}

impl std::fmt::Display for VerroError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerroError::EmptyVideo => write!(f, "input video has no frames"),
            VerroError::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
            VerroError::TooFewKeyFrames {
                available,
                required,
            } => write!(
                f,
                "only {available} key frames available but {required} required"
            ),
            VerroError::Optimizer(e) => write!(f, "optimizer failed: {e}"),
        }
    }
}

impl std::error::Error for VerroError {}

impl From<BipError> for VerroError {
    fn from(e: BipError) -> Self {
        VerroError::Optimizer(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(VerroError::EmptyVideo.to_string().contains("no frames"));
        let e = VerroError::TooFewKeyFrames {
            available: 1,
            required: 2,
        };
        assert!(e.to_string().contains("1"));
        assert!(VerroError::from(BipError::InfeasibleBounds)
            .to_string()
            .contains("optimizer"));
    }
}
