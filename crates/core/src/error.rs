//! Error type for the VERRO pipeline.
//!
//! [`VerroError`] is the single error surfaced by the public sanitizer API.
//! It wraps the per-crate typed errors ([`BipError`], [`LpError`],
//! [`LdpError`], [`VisionError`]) so any failure anywhere in the pipeline
//! reaches the caller as a typed value instead of a panic.

use verro_ldp::LdpError;
use verro_lp::{BipError, LpError};
use verro_video::fault::SourceError;
use verro_video::recover::{FrameHealthReport, IngestError};
use verro_vision::VisionError;

/// Failures surfaced by the sanitizer.
#[derive(Debug, Clone, PartialEq)]
pub enum VerroError {
    /// The input video has no frames.
    EmptyVideo,
    /// The annotations cover a different number of frames than the video.
    AnnotationMismatch {
        video_frames: usize,
        annotation_frames: usize,
    },
    /// The configuration is inconsistent (message explains).
    BadConfig(String),
    /// Key-frame extraction produced fewer frames than the minimum the
    /// optimizer must pick (the paper requires at least 2 for
    /// interpolation).
    TooFewKeyFrames { available: usize, required: usize },
    /// The Phase I optimizer failed.
    Optimizer(BipError),
    /// An LP subroutine outside the Phase I optimizer failed.
    Lp(LpError),
    /// A local-differential-privacy primitive rejected its input.
    Ldp(LdpError),
    /// A vision primitive rejected its input.
    Vision(VisionError),
    /// A frame index outside the matrix/video it addresses (projection
    /// positions, query frame ranges).
    FrameOutOfRange { frame: usize, num_frames: usize },
    /// Fallible frame ingestion exhausted its recovery policy. Carries the
    /// fault that stopped it and the per-frame health log accumulated up to
    /// that point, so operators can see *which* frames failed and how.
    SourceExhausted {
        error: SourceError,
        health: FrameHealthReport,
    },
    /// The output sink exhausted its retry budget (or failed permanently)
    /// while persisting frame `frame` (DESIGN.md §14).
    SinkFailed { frame: usize, reason: String },
    /// A run journal on disk could not be parsed or persisted. Resume
    /// refuses rather than guessing at partial state.
    JournalCorrupt { path: String, reason: String },
    /// `--resume` was pointed at a journal recorded under different inputs.
    /// Resuming would re-randomize, which the ε accounting forbids, so the
    /// engine refuses with the exact field that diverged.
    ResumeMismatch {
        what: String,
        expected: String,
        found: String,
    },
    /// A supervised stream's worker panicked. The panic is caught at the
    /// supervision boundary so sibling streams keep running; the payload
    /// (if it was a string) is carried for the run report.
    StreamFailed { stream: String, reason: String },
    /// A supervised stream made no progress within its stall deadline and
    /// exhausted its restart budget.
    Stalled {
        stream: String,
        timeout_ms: u64,
        restarts: u32,
    },
    /// The run was interrupted (operator signal) after `completed_segments`
    /// of `total_segments` committed. The journal is durable; the run can
    /// be resumed byte-identically.
    Interrupted {
        completed_segments: usize,
        total_segments: usize,
    },
}

impl std::fmt::Display for VerroError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerroError::EmptyVideo => write!(f, "input video has no frames"),
            VerroError::AnnotationMismatch {
                video_frames,
                annotation_frames,
            } => write!(
                f,
                "annotations cover {annotation_frames} frames but the video has {video_frames}"
            ),
            VerroError::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
            VerroError::TooFewKeyFrames {
                available,
                required,
            } => write!(
                f,
                "only {available} key frames available but {required} required"
            ),
            VerroError::Optimizer(e) => write!(f, "optimizer failed: {e}"),
            VerroError::Lp(e) => write!(f, "LP subroutine failed: {e}"),
            VerroError::Ldp(e) => write!(f, "LDP primitive rejected input: {e}"),
            VerroError::Vision(e) => write!(f, "vision primitive rejected input: {e}"),
            VerroError::FrameOutOfRange { frame, num_frames } => {
                write!(f, "frame {frame} out of range (0..{num_frames})")
            }
            VerroError::SourceExhausted { error, health } => write!(
                f,
                "frame source exhausted recovery: {error} ({})",
                health.summary()
            ),
            VerroError::SinkFailed { frame, reason } => {
                write!(f, "output sink failed at frame {frame}: {reason}")
            }
            VerroError::JournalCorrupt { path, reason } => {
                write!(f, "run journal {path} is corrupt: {reason}")
            }
            VerroError::ResumeMismatch {
                what,
                expected,
                found,
            } => write!(
                f,
                "resume refused: journal {what} is {expected} but this run has {found} \
                 (resuming would re-randomize)"
            ),
            VerroError::StreamFailed { stream, reason } => {
                write!(f, "stream {stream} worker panicked: {reason}")
            }
            VerroError::Stalled {
                stream,
                timeout_ms,
                restarts,
            } => write!(
                f,
                "stream {stream} stalled (no progress for {timeout_ms} ms) and exhausted \
                 {restarts} restarts"
            ),
            VerroError::Interrupted {
                completed_segments,
                total_segments,
            } => write!(
                f,
                "run interrupted with {completed_segments} of {total_segments} segments \
                 committed; resume with the journaled run directory"
            ),
        }
    }
}

impl std::error::Error for VerroError {}

impl From<BipError> for VerroError {
    fn from(e: BipError) -> Self {
        VerroError::Optimizer(e)
    }
}

impl From<LpError> for VerroError {
    fn from(e: LpError) -> Self {
        VerroError::Lp(e)
    }
}

impl From<LdpError> for VerroError {
    fn from(e: LdpError) -> Self {
        VerroError::Ldp(e)
    }
}

impl From<IngestError> for VerroError {
    fn from(e: IngestError) -> Self {
        VerroError::SourceExhausted {
            error: e.error,
            health: e.health,
        }
    }
}

impl From<VisionError> for VerroError {
    fn from(e: VisionError) -> Self {
        match e {
            // An empty video is an empty video no matter which layer
            // noticed first — collapse to the pipeline-level variant.
            VisionError::EmptyVideo => VerroError::EmptyVideo,
            other => VerroError::Vision(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(VerroError::EmptyVideo.to_string().contains("no frames"));
        let e = VerroError::TooFewKeyFrames {
            available: 1,
            required: 2,
        };
        assert!(e.to_string().contains("1"));
        assert!(VerroError::from(BipError::InfeasibleBounds)
            .to_string()
            .contains("optimizer"));
        let e = VerroError::AnnotationMismatch {
            video_frames: 4,
            annotation_frames: 7,
        };
        assert!(e.to_string().contains("7"));
        assert!(e.to_string().contains("4"));
    }

    #[test]
    fn supervision_errors_display_their_context() {
        let e = VerroError::SinkFailed {
            frame: 9,
            reason: "no space".into(),
        };
        assert!(e.to_string().contains("frame 9"));
        let e = VerroError::ResumeMismatch {
            what: "seed".into(),
            expected: "7".into(),
            found: "8".into(),
        };
        assert!(e.to_string().contains("re-randomize"));
        let e = VerroError::Stalled {
            stream: "cam0".into(),
            timeout_ms: 500,
            restarts: 2,
        };
        assert!(e.to_string().contains("500 ms"));
        assert!(e.to_string().contains("2 restarts"));
        let e = VerroError::Interrupted {
            completed_segments: 3,
            total_segments: 5,
        };
        assert!(e.to_string().contains("3 of 5"));
    }

    #[test]
    fn ingest_errors_convert_to_source_exhausted() {
        let ingest = IngestError {
            error: SourceError::Missing { frame: 3 },
            health: FrameHealthReport::all_ok(2),
        };
        let e = VerroError::from(ingest);
        assert!(matches!(
            e,
            VerroError::SourceExhausted {
                error: SourceError::Missing { frame: 3 },
                ..
            }
        ));
        assert!(e.to_string().contains("frame 3"));
        assert!(e.to_string().contains("2 ok"));
    }

    #[test]
    fn wrapped_errors_convert() {
        assert_eq!(
            VerroError::from(LdpError::ZeroDimensions),
            VerroError::Ldp(LdpError::ZeroDimensions)
        );
        assert_eq!(
            VerroError::from(LpError::Infeasible),
            VerroError::Lp(LpError::Infeasible)
        );
        assert_eq!(
            VerroError::from(VisionError::EmptyVideo),
            VerroError::EmptyVideo
        );
        assert_eq!(
            VerroError::from(VisionError::OutOfOrderFrames { what: "x" }),
            VerroError::Vision(VisionError::OutOfOrderFrames { what: "x" })
        );
    }
}
