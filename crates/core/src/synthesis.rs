//! Synthetic video synthesis: background reconstruction and rendering of
//! the indistinguishable replacement objects.
//!
//! Backgrounds are reconstructed per segment by removing the original
//! objects and filling the holes with exemplar inpainting (the paper's
//! reference \[11\]) or by the temporal-median ablation. Every retained object
//! is rendered as the *same shape* — a capsule — in a distinct random color:
//! visual indistinguishability comes from uniform shape, and the color only
//! separates instances (its assignment is random, Section 2.2.2).

use crate::config::{BackgroundMode, VerroConfig};
use crate::error::VerroError;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use verro_video::annotations::VideoAnnotations;
use verro_video::color::{distinct_color, Rgb};
use verro_video::geometry::{BBox, Size};
use verro_video::image::ImageBuffer;
use verro_video::object::ObjectId;
use verro_video::source::FrameSource;
use verro_vision::bgmodel::{median_background, BackgroundConfig};
use verro_vision::inpaint::{inpaint, InpaintConfig, Mask};
use verro_vision::keyframe::KeyFrameResult;

/// Removes the given object boxes from a frame and reconstructs the pixels
/// behind them (Section 4.1). Boxes are slightly inflated so soft object
/// edges do not bleed into the reconstruction.
pub fn reconstruct_background(
    frame: &ImageBuffer,
    boxes: &[BBox],
    config: &InpaintConfig,
) -> ImageBuffer {
    let inflated: Vec<BBox> = boxes.iter().map(|b| b.scaled_about_center(1.15)).collect();
    let mask = Mask::from_boxes(frame.width(), frame.height(), &inflated);
    let mut out = frame.clone();
    // The mask is built from the frame's own dimensions, so inpaint's size
    // check cannot fail.
    let filled = inpaint(&mut out, &mask, config);
    debug_assert!(filled.is_ok());
    out
}

/// One reconstructed background and the frame range it covers.
#[derive(Debug, Clone, PartialEq)]
pub struct BackgroundScene {
    pub start: usize,
    pub end: usize,
    pub image: ImageBuffer,
}

/// Builds per-segment background scenes from the source video.
///
/// Segments are reconstructed in parallel — each segment's inpaint (or
/// temporal median) touches only its own frames, so the fan-out is
/// embarrassingly parallel. `par_iter().map().collect()` preserves segment
/// order and every per-segment computation is deterministic, so the output
/// is bit-identical to a serial run regardless of thread count (covered by
/// the determinism test in `tests/pipeline_integration.rs`).
pub fn build_backgrounds<S: FrameSource + Sync>(
    src: &S,
    annotations: &VideoAnnotations,
    key_frames: &KeyFrameResult,
    config: &VerroConfig,
) -> Result<Vec<BackgroundScene>, VerroError> {
    key_frames
        .segments
        .par_iter()
        .map(|seg| build_segment_background(src, annotations, seg, config))
        .collect()
}

/// Reconstructs one segment's background scene — the unit of work
/// [`build_backgrounds`] fans out, exposed so the streaming renderer can
/// build scenes lazily (one segment resident at a time) and still produce
/// the exact bytes of the batch path: both run this function on the same
/// source frames.
pub fn build_segment_background<S: FrameSource + Sync>(
    src: &S,
    annotations: &VideoAnnotations,
    seg: &verro_vision::keyframe::Segment,
    config: &VerroConfig,
) -> Result<BackgroundScene, VerroError> {
    let (start, end) = (seg.start(), seg.end());
    let image = match config.background {
        BackgroundMode::KeyFrameInpaint => {
            let frame = src.frame(seg.key_frame);
            let boxes: Vec<BBox> = annotations
                .in_frame(seg.key_frame)
                .into_iter()
                .map(|(_, b)| b)
                .collect();
            reconstruct_background(&frame, &boxes, &config.inpaint)
        }
        BackgroundMode::TemporalMedian => median_background(
            src,
            start,
            end,
            &BackgroundConfig {
                max_samples: config.background_samples,
            },
        )
        .map_err(VerroError::from)?,
    };
    Ok(BackgroundScene { start, end, image })
}

/// The source frames [`build_segment_background`] reads for one segment:
/// the key frame under [`BackgroundMode::KeyFrameInpaint`], the median's
/// uniform sample under [`BackgroundMode::TemporalMedian`]. Ascending. The
/// streaming renderer retains exactly these frames from its forward sweep;
/// a mismatch with what the build actually touches would surface as a
/// missing-frame panic in the conformance tests.
pub fn segment_background_inputs(
    seg: &verro_vision::keyframe::Segment,
    config: &VerroConfig,
) -> Vec<usize> {
    match config.background {
        BackgroundMode::KeyFrameInpaint => vec![seg.key_frame],
        BackgroundMode::TemporalMedian => {
            verro_vision::bgmodel::sample_indices(seg.start(), seg.end(), config.background_samples)
        }
    }
}

/// Index of the background scene covering frame `k` over the scenes'
/// `(start, end)` ranges: the covering range if one exists, else the
/// nearest range by distance with ties to the *first* minimum — exactly
/// [`SyntheticVideo::background_for`]'s rule, factored out so the
/// streaming renderer can partition frames across scenes before any scene
/// is built. `ranges` must be non-empty.
pub fn background_index_for(ranges: &[(usize, usize)], k: usize) -> usize {
    ranges
        .iter()
        .position(|&(start, end)| k >= start && k <= end)
        .unwrap_or_else(|| {
            ranges
                .iter()
                .enumerate()
                .min_by_key(|(_, &(start, end))| if k < start { start - k } else { k - end })
                .map(|(i, _)| i)
                .expect("non-empty ranges")
        })
}

/// The synthetic objects' color table: one visually distinct color per
/// object ID, keyed by the randomized IDs Phase II assigned. Shared by
/// [`SyntheticVideo::new`] and the streaming renderer so both paint
/// identical pixels.
pub fn color_table(annotations: &VideoAnnotations) -> BTreeMap<ObjectId, Rgb> {
    annotations
        .ids()
        .into_iter()
        .map(|id| (id, distinct_color(id.0 as usize)))
        .collect()
}

/// Paints frame `k`'s synthetic objects over a background: painter's order
/// by box bottom (farther objects first), one capsule per present object.
/// [`SyntheticVideo`]'s `frame` and the streaming renderer both delegate
/// here, which is what makes their output bytes identical.
pub fn compose_frame(
    background: &ImageBuffer,
    annotations: &VideoAnnotations,
    colors: &BTreeMap<ObjectId, Rgb>,
    k: usize,
) -> ImageBuffer {
    let mut img = background.clone();
    let mut present = annotations.in_frame(k);
    present.sort_by(|a, b| a.1.bottom().total_cmp(&b.1.bottom()));
    for (id, bbox) in present {
        let color = colors.get(&id).copied().unwrap_or(Rgb::WHITE);
        SyntheticVideo::draw_capsule(&mut img, bbox, color);
    }
    img
}

/// The published synthetic video `V*`: reconstructed backgrounds plus the
/// synthetic objects of Phase II, rendered lazily frame by frame.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticVideo {
    size: Size,
    fps: f64,
    num_frames: usize,
    backgrounds: Vec<BackgroundScene>,
    /// Synthetic trajectories (what the recipient could re-derive by
    /// tracking `V*`).
    pub annotations: VideoAnnotations,
    colors: BTreeMap<ObjectId, Rgb>,
}

/// Serializable summary of the synthetic video (sizes, colors) for reports.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SyntheticVideoInfo {
    pub num_frames: usize,
    pub num_objects: usize,
    pub num_backgrounds: usize,
}

impl SyntheticVideo {
    /// Assembles the output video. Colors are assigned by synthetic object
    /// index — random with respect to the original identities because the
    /// synthetic IDs were produced by Phase II's randomized assignment.
    pub fn new(
        size: Size,
        fps: f64,
        backgrounds: Vec<BackgroundScene>,
        annotations: VideoAnnotations,
    ) -> Self {
        // The pipeline always produces at least one segment background; a
        // direct caller handing us none gets a black fallback scene instead
        // of a panic in `background_for`.
        debug_assert!(!backgrounds.is_empty(), "need at least one background");
        let num_frames = annotations.num_frames();
        let mut backgrounds = backgrounds;
        if backgrounds.is_empty() {
            backgrounds.push(BackgroundScene {
                start: 0,
                end: num_frames.saturating_sub(1),
                image: ImageBuffer::new(size, Rgb::BLACK),
            });
        }
        let colors = color_table(&annotations);
        Self {
            size,
            fps,
            num_frames,
            backgrounds,
            annotations,
            colors,
        }
    }

    /// Summary info for reports.
    pub fn info(&self) -> SyntheticVideoInfo {
        SyntheticVideoInfo {
            num_frames: self.num_frames,
            num_objects: self.annotations.num_objects(),
            num_backgrounds: self.backgrounds.len(),
        }
    }

    /// The background image covering frame `k` (nearest segment when `k`
    /// falls outside every range, which can happen with strided key-frame
    /// extraction).
    pub fn background_for(&self, k: usize) -> &ImageBuffer {
        let ranges: Vec<(usize, usize)> =
            self.backgrounds.iter().map(|b| (b.start, b.end)).collect();
        &self.backgrounds[background_index_for(&ranges, k)].image
    }

    /// The color of a synthetic object.
    pub fn color_of(&self, id: ObjectId) -> Option<Rgb> {
        self.colors.get(&id).copied()
    }

    /// Renders every frame of `V*`. Each frame is a pure function of the
    /// (immutable) backgrounds, annotations, and color table, and
    /// `par_iter().map().collect()` preserves frame order, so the result
    /// is bit-identical to calling [`FrameSource::frame`] for
    /// `0..num_frames` serially, at any thread count.
    ///
    /// The rayon fan-out only pays for itself when there are threads to
    /// fan out to *and* enough pixels to amortize the splitting/collection
    /// overhead. Below the crossover (or on a one-thread pool) this
    /// renders serially; both paths produce the same bytes, so the choice
    /// is pure scheduling, and on one thread the dispatched path measures
    /// at parity with the raw serial loop (`BENCH_pipeline.json`, whose
    /// earlier 0.73× render reading turned out to be a harness artifact —
    /// see `time_ms_interleaved` in the bench report binary).
    pub fn render_all(&self) -> Vec<ImageBuffer> {
        // ~1M pixels of total work: at the bench's per-frame cost the
        // fan-out overhead (~17 µs/frame observed single-core) is no
        // longer visible against multi-core wins above this size.
        const RENDER_PARALLEL_MIN_PIXELS: u64 = 1 << 20;
        let total_pixels = self.size.area().saturating_mul(self.num_frames as u64);
        if rayon::current_num_threads() <= 1 || total_pixels < RENDER_PARALLEL_MIN_PIXELS {
            return (0..self.num_frames).map(|k| self.frame(k)).collect();
        }
        let indices: Vec<usize> = (0..self.num_frames).collect();
        indices.par_iter().map(|&k| self.frame(k)).collect()
    }

    /// Renders one synthetic object: a capsule (ellipse body + head disc)
    /// of a single color — the same shape for every object.
    fn draw_capsule(img: &mut ImageBuffer, bbox: BBox, color: Rgb) {
        let head_h = bbox.h * 0.25;
        img.fill_ellipse(
            BBox::new(bbox.x + bbox.w * 0.2, bbox.y, bbox.w * 0.6, head_h),
            color,
        );
        img.fill_ellipse(
            BBox::new(bbox.x, bbox.y + head_h * 0.8, bbox.w, bbox.h - head_h * 0.8),
            color,
        );
    }
}

impl FrameSource for SyntheticVideo {
    fn num_frames(&self) -> usize {
        self.num_frames
    }

    fn frame_size(&self) -> Size {
        self.size
    }

    fn frame(&self, k: usize) -> ImageBuffer {
        assert!(k < self.num_frames, "frame {k} out of range");
        compose_frame(self.background_for(k), &self.annotations, &self.colors, k)
    }

    fn fps(&self) -> f64 {
        self.fps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use verro_video::object::ObjectClass;

    fn scene(v: u8, size: Size) -> ImageBuffer {
        ImageBuffer::new(size, Rgb::new(v, v, v))
    }

    fn simple_synthetic() -> SyntheticVideo {
        let size = Size::new(64, 48);
        let mut ann = VideoAnnotations::new(10);
        for k in 0..10 {
            ann.record(
                ObjectId(0),
                ObjectClass::Pedestrian,
                k,
                BBox::new(5.0 + k as f64 * 3.0, 20.0, 6.0, 14.0),
            );
        }
        ann.record(
            ObjectId(1),
            ObjectClass::Pedestrian,
            4,
            BBox::new(40.0, 25.0, 6.0, 14.0),
        );
        let backgrounds = vec![
            BackgroundScene {
                start: 0,
                end: 4,
                image: scene(100, size),
            },
            BackgroundScene {
                start: 5,
                end: 9,
                image: scene(150, size),
            },
        ];
        SyntheticVideo::new(size, 30.0, backgrounds, ann)
    }

    #[test]
    fn backgrounds_selected_by_range() {
        let v = simple_synthetic();
        assert_eq!(v.background_for(0).get(0, 0), Rgb::new(100, 100, 100));
        assert_eq!(v.background_for(7).get(0, 0), Rgb::new(150, 150, 150));
    }

    #[test]
    fn out_of_range_frame_uses_nearest_background() {
        let size = Size::new(16, 16);
        let mut ann = VideoAnnotations::new(20);
        ann.record(
            ObjectId(0),
            ObjectClass::Pedestrian,
            0,
            BBox::new(0.0, 0.0, 2.0, 4.0),
        );
        let v = SyntheticVideo::new(
            size,
            30.0,
            vec![BackgroundScene {
                start: 5,
                end: 9,
                image: scene(42, size),
            }],
            ann,
        );
        assert_eq!(v.background_for(0).get(0, 0), Rgb::new(42, 42, 42));
        assert_eq!(v.background_for(19).get(0, 0), Rgb::new(42, 42, 42));
    }

    #[test]
    fn objects_rendered_in_distinct_colors() {
        let v = simple_synthetic();
        let c0 = v.color_of(ObjectId(0)).unwrap();
        let c1 = v.color_of(ObjectId(1)).unwrap();
        assert_ne!(c0, c1);
        // Frame 4 contains both objects; both colors must appear.
        let img = v.frame(4);
        let mut found0 = false;
        let mut found1 = false;
        for y in 0..img.height() {
            for x in 0..img.width() {
                let p = img.get(x, y);
                found0 |= p == c0;
                found1 |= p == c1;
            }
        }
        assert!(found0 && found1);
    }

    #[test]
    fn frames_without_objects_equal_background() {
        let size = Size::new(16, 16);
        let ann = VideoAnnotations::new(3);
        let v = SyntheticVideo::new(
            size,
            30.0,
            vec![BackgroundScene {
                start: 0,
                end: 2,
                image: scene(70, size),
            }],
            ann,
        );
        assert_eq!(v.frame(1), scene(70, size));
    }

    #[test]
    fn reconstruct_background_removes_object() {
        let size = Size::new(40, 30);
        // Striped background with a red "object".
        let mut frame = ImageBuffer::from_fn(size, |x, _| {
            if (x / 4) % 2 == 0 {
                Rgb::new(200, 200, 200)
            } else {
                Rgb::new(50, 50, 50)
            }
        });
        let obj = BBox::new(16.0, 10.0, 6.0, 10.0);
        frame.fill_rect(obj, Rgb::new(255, 0, 0));
        let bg = reconstruct_background(&frame, &[obj], &InpaintConfig::default());
        // No red pixels survive.
        for y in 0..30 {
            for x in 0..40 {
                assert_ne!(bg.get(x, y), Rgb::new(255, 0, 0), "red at ({x},{y})");
            }
        }
    }

    #[test]
    fn render_all_matches_serial_frames() {
        let v = simple_synthetic();
        let rendered = v.render_all();
        assert_eq!(rendered.len(), 10);
        for (k, img) in rendered.iter().enumerate() {
            assert_eq!(*img, v.frame(k), "frame {k}");
        }
    }

    #[test]
    fn info_summary() {
        let v = simple_synthetic();
        let info = v.info();
        assert_eq!(info.num_frames, 10);
        assert_eq!(info.num_objects, 2);
        assert_eq!(info.num_backgrounds, 2);
    }

    #[test]
    fn background_index_covers_gaps_with_first_min_ties() {
        // Ranges with a gap (strided segmentation) and leading/trailing
        // frames outside every range.
        let ranges = [(2usize, 5usize), (9, 12)];
        assert_eq!(background_index_for(&ranges, 0), 0);
        assert_eq!(background_index_for(&ranges, 3), 0);
        assert_eq!(background_index_for(&ranges, 6), 0); // distance 1 vs 3
                                                         // Equidistant (distance 2 from both ranges): first minimum wins.
        assert_eq!(background_index_for(&ranges, 7), 0);
        assert_eq!(background_index_for(&ranges, 8), 1); // distance 3 vs 1
        assert_eq!(background_index_for(&ranges, 11), 1);
        assert_eq!(background_index_for(&ranges, 99), 1);
        // Assignment is monotone non-decreasing in k — the property the
        // streaming renderer's single forward pass relies on.
        let mut prev = 0;
        for k in 0..100 {
            let j = background_index_for(&ranges, k);
            assert!(j >= prev, "assignment regressed at frame {k}");
            prev = j;
        }
    }

    #[test]
    fn compose_frame_matches_video_frame() {
        let v = simple_synthetic();
        let colors = color_table(&v.annotations);
        for k in 0..10 {
            assert_eq!(
                compose_frame(v.background_for(k), &v.annotations, &colors, k),
                v.frame(k),
                "frame {k}"
            );
        }
    }

    #[test]
    fn segment_background_inputs_match_mode() {
        let seg = verro_vision::keyframe::Segment::new((0..30).collect(), 7);
        let mut cfg = VerroConfig::default();
        cfg.background = BackgroundMode::KeyFrameInpaint;
        assert_eq!(segment_background_inputs(&seg, &cfg), vec![7]);
        cfg.background = BackgroundMode::TemporalMedian;
        cfg.background_samples = 5;
        let inputs = segment_background_inputs(&seg, &cfg);
        assert_eq!(inputs.len(), 5);
        assert_eq!(*inputs.first().unwrap(), 0);
        assert_eq!(*inputs.last().unwrap(), 29);
        assert!(inputs.windows(2).all(|w| w[0] < w[1]));
    }
}
