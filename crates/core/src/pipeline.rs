//! The end-to-end VERRO sanitizer.
//!
//! ```text
//! input video ──► preprocessing (key frames, backgrounds, [detect+track])
//!              ──► Phase I  (reduce → optimize → randomized response)
//!              ──► Phase II (coordinates → interpolation → synthesis)
//!              ──► V* + privacy statement + utility report
//! ```

use crate::config::VerroConfig;
use crate::error::VerroError;
use crate::metrics::UtilityReport;
use crate::phase1::{run_phase1, Phase1Output};
use crate::phase2::{run_phase2, Phase2Output};
use crate::privacy::PrivacyStatement;
use crate::synthesis::{build_backgrounds, SyntheticVideo};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};
use verro_video::annotations::VideoAnnotations;
use verro_video::cache::CachedSource;
use verro_video::fault::TryFrameSource;
use verro_video::object::ObjectClass;
use verro_video::recover::{ingest_with_recovery, FrameHealthReport, RecoveryPolicy};
use verro_video::source::FrameSource;
use verro_vision::detect::{detect_all, DetectorConfig};
use verro_vision::histogram::{compute_frame_stats, FrameStats};
use verro_vision::keyframe::{extract_key_frames, segment_histograms, KeyFrameResult};
use verro_vision::track::{SortTracker, TrackerConfig};

/// Wall-clock cost of each stage (Table 3 rows).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseTimings {
    /// Key-frame extraction + background reconstruction (+ detection and
    /// tracking when the pipeline ran them). Equals the sum of the three
    /// `preprocess_*` breakdown fields.
    pub preprocess: Duration,
    /// Preprocess breakdown: Algorithm 2 key-frame extraction. When the
    /// tracking pipeline precomputes per-frame stats in its fused ingestion
    /// pass, the histogram cost lands in `preprocess_detect_track` and this
    /// field covers only the sequential clustering.
    #[serde(default)]
    pub preprocess_keyframes: Duration,
    /// Preprocess breakdown: per-segment background reconstruction.
    #[serde(default)]
    pub preprocess_backgrounds: Duration,
    /// Preprocess breakdown: the fused stats pass (when tracking),
    /// background subtraction, detection, and SORT tracking (zero unless
    /// the pipeline ran its own tracking).
    #[serde(default)]
    pub preprocess_detect_track: Duration,
    /// Dimension reduction + optimization + randomized response.
    pub phase1: Duration,
    /// Coordinate assignment + interpolation + synthesis assembly.
    pub phase2: Duration,
    /// Rendering V* frames to rasters. Zero inside the library (frames are
    /// rendered lazily); writers such as the CLI fill it in.
    #[serde(default)]
    pub render: Duration,
    /// Encoding rendered rasters to the output container. Zero inside the
    /// library; writers such as the CLI fill it in.
    #[serde(default)]
    pub encode: Duration,
}

/// Everything a sanitization run produces.
#[derive(Debug, Clone)]
pub struct SanitizedResult {
    /// The publishable synthetic video `V*`.
    pub video: SyntheticVideo,
    /// Phase I artifacts (presence vectors, picked frames, ε).
    pub phase1: Phase1Output,
    /// Phase II artifacts (trajectories, mapping, losses).
    pub phase2: Phase2Output,
    /// The Algorithm 2 segmentation.
    pub key_frames: KeyFrameResult,
    /// Stage timings.
    pub timings: PhaseTimings,
    /// Owner-side utility summary against the original annotations.
    pub utility: UtilityReport,
    /// The privacy guarantee of the release.
    pub privacy: PrivacyStatement,
    /// Per-frame ingestion health. All-ok for infallible sources; the
    /// `*_fallible` entry points record retries, repairs, and skips here.
    pub health: FrameHealthReport,
}

/// Per-class artifacts of a multi-type sanitization.
#[derive(Debug, Clone)]
pub struct ClassResult {
    pub class: ObjectClass,
    pub privacy: PrivacyStatement,
    pub utility: UtilityReport,
    pub phase1: Phase1Output,
    pub phase2: Phase2Output,
}

/// Result of [`Verro::sanitize_per_class`]: one merged synthetic video plus
/// per-class privacy statements and utility reports.
#[derive(Debug, Clone)]
pub struct MultiClassResult {
    /// The merged publishable video (all classes' synthetic objects).
    pub video: SyntheticVideo,
    /// Per-class artifacts in ascending class order.
    pub per_class: Vec<ClassResult>,
    /// The shared Algorithm 2 segmentation.
    pub key_frames: KeyFrameResult,
    /// Timings: preprocess, and the combined Phase I+II loop.
    pub timings: PhaseTimings,
    /// Per-frame ingestion health. All-ok for infallible sources; the
    /// `*_fallible` entry points record retries, repairs, and skips here.
    pub health: FrameHealthReport,
}

/// The VERRO sanitizer.
#[derive(Debug, Clone)]
pub struct Verro {
    config: VerroConfig,
}

impl Verro {
    /// Creates a sanitizer after validating the configuration.
    pub fn new(config: VerroConfig) -> Result<Self, VerroError> {
        config.validate().map_err(VerroError::BadConfig)?;
        // Install the configured kernel mode before any frame is touched.
        // `Auto` is a no-op (it defers to the CLI/env/process selection),
        // and the arms are bit-identical, so this changes dispatch speed
        // only — never released bytes.
        config.kernels.apply();
        Ok(Self { config })
    }

    pub fn config(&self) -> &VerroConfig {
        &self.config
    }

    /// Sanitizes a video given owner-side annotations (ground truth or a
    /// prior tracking run).
    ///
    /// # Errors
    ///
    /// Returns [`VerroError::EmptyVideo`] for a zero-frame video and
    /// [`VerroError::AnnotationMismatch`] when the annotations cover a
    /// different number of frames than the video; deeper failures surface
    /// as the wrapped per-crate error variants.
    pub fn sanitize<S: FrameSource + Sync>(
        &self,
        src: &S,
        annotations: &VideoAnnotations,
    ) -> Result<SanitizedResult, VerroError> {
        self.sanitize_impl(src, annotations, None)
    }

    /// Shared body of [`sanitize`](Self::sanitize) and
    /// [`sanitize_with_tracking`](Self::sanitize_with_tracking). Wraps the
    /// source in the shared decoded-frame LRU cache so key-frame extraction
    /// and background reconstruction decode each frame at most once, then
    /// delegates to [`sanitize_cached`](Self::sanitize_cached).
    /// `detection_background` is a whole-clip temporal-median background a
    /// caller already paid for; it is reused (instead of re-reduced) when
    /// it matches what `build_backgrounds` would compute — temporal-median
    /// mode with a single segment spanning the full clip.
    fn sanitize_impl<S: FrameSource + Sync>(
        &self,
        src: &S,
        annotations: &VideoAnnotations,
        detection_background: Option<&verro_video::image::ImageBuffer>,
    ) -> Result<SanitizedResult, VerroError> {
        let cached = CachedSource::new(src, self.config.frame_cache_budget);
        self.sanitize_cached(&cached, annotations, detection_background, None)
    }

    /// The single-ingestion sanitizer body. `stats` carries per-frame fused
    /// histogram/luma stats a caller already computed (the tracking
    /// pipeline's ingestion pass); when present, Algorithm 2 reuses them via
    /// [`segment_histograms`] instead of re-decoding frames. Both paths are
    /// byte-identical because [`extract_key_frames`] computes the very same
    /// fused stats internally, and caching only memoizes the deterministic
    /// frame decode (certified by `tests/pipeline_cache_identity.rs`).
    fn sanitize_cached<S: FrameSource + Sync>(
        &self,
        src: &S,
        annotations: &VideoAnnotations,
        detection_background: Option<&verro_video::image::ImageBuffer>,
        stats: Option<&[FrameStats]>,
    ) -> Result<SanitizedResult, VerroError> {
        if src.num_frames() == 0 {
            return Err(VerroError::EmptyVideo);
        }
        if src.num_frames() != annotations.num_frames() {
            return Err(VerroError::AnnotationMismatch {
                video_frames: src.num_frames(),
                annotation_frames: annotations.num_frames(),
            });
        }
        let mut rng = StdRng::seed_from_u64(self.config.seed);

        // Preprocessing: Algorithm 2 segmentation + background scenes.
        let t0 = Instant::now();
        let key_frames = match stats {
            Some(stats) => {
                // Reuse the fused ingestion pass: pick the same sampled
                // indices extract_key_frames would, take their histograms
                // from the precomputed stats, and run the identical
                // sequential clustering.
                let stride = self.config.keyframe.stride.max(1);
                let sampled: Vec<usize> = (0..src.num_frames()).step_by(stride).collect();
                let histograms: Vec<_> = sampled
                    .iter()
                    .map(|&k| stats[k].histogram.clone())
                    .collect();
                segment_histograms(&sampled, &histograms, &self.config.keyframe)?
            }
            None => extract_key_frames(src, &self.config.keyframe)?,
        };
        let preprocess_keyframes = t0.elapsed();
        let tb = Instant::now();
        let full_clip_single_segment = key_frames.segments.len() == 1
            && key_frames.segments[0].start() == 0
            && key_frames.segments[0].end() == src.num_frames() - 1;
        let backgrounds = match detection_background {
            Some(bg)
                if self.config.background == crate::config::BackgroundMode::TemporalMedian
                    && full_clip_single_segment =>
            {
                // The detection background *is* the single segment's
                // temporal median — same sample budget, same range.
                vec![crate::synthesis::BackgroundScene {
                    start: 0,
                    end: src.num_frames() - 1,
                    image: bg.clone(),
                }]
            }
            _ => build_backgrounds(src, annotations, &key_frames, &self.config)?,
        };
        let preprocess_backgrounds = tb.elapsed();
        let preprocess = t0.elapsed();

        // Phase I.
        let t1 = Instant::now();
        let phase1 = run_phase1(annotations, &key_frames, &self.config, &mut rng)?;
        let phase1_time = t1.elapsed();

        // Phase II.
        let t2 = Instant::now();
        let phase2 = run_phase2(
            &phase1,
            annotations,
            &key_frames,
            src.frame_size(),
            &self.config,
            &mut rng,
        )?;
        let video = SyntheticVideo::new(
            src.frame_size(),
            src.fps(),
            backgrounds,
            phase2.synthetic.clone(),
        );
        let phase2_time = t2.elapsed();

        let utility = UtilityReport::compute(annotations, &phase2.synthetic, &phase2.mapping);
        let privacy = PrivacyStatement::from_phase1(&phase1, &self.config);

        Ok(SanitizedResult {
            video,
            phase1,
            phase2,
            key_frames,
            timings: PhaseTimings {
                preprocess,
                preprocess_keyframes,
                preprocess_backgrounds,
                preprocess_detect_track: Duration::ZERO,
                phase1: phase1_time,
                phase2: phase2_time,
                render: Duration::ZERO,
                encode: Duration::ZERO,
            },
            utility,
            privacy,
            health: FrameHealthReport::all_ok(src.num_frames()),
        })
    }

    /// Sanitizes a video with **multiple sensitive object types**
    /// (Section 5, "Multiple Object Types"): the annotations are
    /// partitioned by class, each class is sanitized independently (its
    /// objects are ε-indistinguishable within the class), and the synthetic
    /// populations are merged into one output video. Key frames and
    /// backgrounds are computed once and shared.
    pub fn sanitize_per_class<S: FrameSource + Sync>(
        &self,
        src: &S,
        annotations: &VideoAnnotations,
    ) -> Result<MultiClassResult, VerroError> {
        if src.num_frames() == 0 {
            return Err(VerroError::EmptyVideo);
        }
        if src.num_frames() != annotations.num_frames() {
            return Err(VerroError::AnnotationMismatch {
                video_frames: src.num_frames(),
                annotation_frames: annotations.num_frames(),
            });
        }
        let mut rng = StdRng::seed_from_u64(self.config.seed);

        // One decoded-frame cache shared by key-frame extraction and the
        // per-segment background reconstruction.
        let src = &CachedSource::new(src, self.config.frame_cache_budget);
        let t0 = Instant::now();
        let key_frames = extract_key_frames(src, &self.config.keyframe)?;
        let preprocess_keyframes = t0.elapsed();
        let tb = Instant::now();
        let backgrounds =
            crate::synthesis::build_backgrounds(src, annotations, &key_frames, &self.config)?;
        let preprocess_backgrounds = tb.elapsed();
        let preprocess = t0.elapsed();

        let classes: std::collections::BTreeSet<ObjectClass> =
            annotations.tracks().map(|t| t.class).collect();

        let mut merged = VideoAnnotations::new(annotations.num_frames());
        let mut per_class = Vec::new();
        let mut next_id = 0u32;
        let mut phase1_time = Duration::ZERO;
        let mut phase2_time = Duration::ZERO;
        for class in classes {
            let class_ann = annotations.filtered(|t| t.class == class);
            let t1 = Instant::now();
            let phase1 = run_phase1(&class_ann, &key_frames, &self.config, &mut rng)?;
            phase1_time += t1.elapsed();
            let t2 = Instant::now();
            let phase2 = run_phase2(
                &phase1,
                &class_ann,
                &key_frames,
                src.frame_size(),
                &self.config,
                &mut rng,
            )?;
            phase2_time += t2.elapsed();
            // Renumber this class's synthetic objects after the previous
            // classes' so the merged video has dense distinct IDs.
            let offset = next_id;
            for track in phase2.synthetic.tracks() {
                for obs in track.observations() {
                    merged.record(
                        verro_video::object::ObjectId(track.id.0 + offset),
                        track.class,
                        obs.frame,
                        obs.bbox,
                    );
                }
                next_id = next_id.max(offset + track.id.0 + 1);
            }
            let privacy = PrivacyStatement::from_phase1(&phase1, &self.config);
            let utility = UtilityReport::compute(&class_ann, &phase2.synthetic, &phase2.mapping);
            per_class.push(ClassResult {
                class,
                privacy,
                utility,
                phase1,
                phase2,
            });
        }

        let video = SyntheticVideo::new(src.frame_size(), src.fps(), backgrounds, merged);
        Ok(MultiClassResult {
            video,
            per_class,
            key_frames,
            timings: PhaseTimings {
                preprocess,
                preprocess_keyframes,
                preprocess_backgrounds,
                preprocess_detect_track: Duration::ZERO,
                phase1: phase1_time,
                phase2: phase2_time,
                render: Duration::ZERO,
                encode: Duration::ZERO,
            },
            health: FrameHealthReport::all_ok(src.num_frames()),
        })
    }

    /// Runs the full preprocessing itself — temporal background model,
    /// background-subtraction detection, SORT tracking — then sanitizes.
    /// Returns the tracked annotations alongside the result so callers can
    /// evaluate tracking quality separately.
    pub fn sanitize_with_tracking<S: FrameSource + Sync>(
        &self,
        src: &S,
        detector: &DetectorConfig,
        tracker_config: TrackerConfig,
        class: ObjectClass,
    ) -> Result<(SanitizedResult, VideoAnnotations), VerroError> {
        self.track_and_sanitize(src, detector, tracker_config, class, &[])
    }

    /// Shared body of [`sanitize_with_tracking`](Self::sanitize_with_tracking)
    /// and its fallible variant. `skipped` lists frames whose rasters are
    /// neighbor backfills rather than source data: they are excluded from
    /// the detection background median (a duplicated raster would bias it)
    /// and the detector is not run on them — the tracker coasts through on
    /// its motion model, exactly as it does through an occlusion.
    fn track_and_sanitize<S: FrameSource + Sync>(
        &self,
        src: &S,
        detector: &DetectorConfig,
        tracker_config: TrackerConfig,
        class: ObjectClass,
        skipped: &[usize],
    ) -> Result<(SanitizedResult, VideoAnnotations), VerroError> {
        if src.num_frames() == 0 {
            return Err(VerroError::EmptyVideo);
        }
        // Single ingestion pass: one decoded-frame cache feeds the temporal
        // median, the fused per-frame stats (HSV histogram + mean luma, one
        // raster traversal), parallel detection, and the sanitizer body.
        let cached = CachedSource::new(src, self.config.frame_cache_budget);
        let td = Instant::now();
        // Background model over the whole clip for subtraction.
        let bg = verro_vision::bgmodel::median_background_excluding(
            &cached,
            0,
            cached.num_frames() - 1,
            &verro_vision::bgmodel::BackgroundConfig {
                max_samples: self.config.background_samples,
            },
            skipped,
        )?;
        // Fused stats over every frame (skipped frames included — their
        // backfilled rasters fed the key-frame histograms before this
        // restructuring too, so behavior is unchanged).
        let stats = compute_frame_stats(&cached, self.config.keyframe.bins);
        let lumas: Vec<f64> = stats.iter().map(|s| s.mean_luma).collect();
        // Per-frame detection is a pure function of (frame, background), so
        // it fans out across frames; only the SORT update below is
        // order-sensitive, and it consumes the collected detections in
        // ascending frame order — identical tracks to the serial loop.
        let detections = detect_all(&cached, &bg, detector, &lumas, skipped)?;
        let mut tracker = SortTracker::new(tracker_config, class);
        for (k, dets) in detections.iter().enumerate() {
            let boxes: Vec<_> = dets.iter().map(|d| d.bbox).collect();
            tracker.step(k, &boxes)?;
        }
        // A tracker that finds zero objects is not an error: the degraded
        // result is an empty-but-valid V* whose ε accounting is still exact.
        let annotations = tracker.finish(cached.num_frames());
        let detect_track = td.elapsed();
        // Static single-segment videos reuse the detection background
        // instead of recomputing the same temporal median — but only when
        // nothing was excluded, since the segment median samples all frames.
        let detection_background = if skipped.is_empty() { Some(&bg) } else { None };
        let mut result =
            self.sanitize_cached(&cached, &annotations, detection_background, Some(&stats))?;
        // The tracking stage is preprocessing too; fold it into the report.
        result.timings.preprocess_detect_track = detect_track;
        result.timings.preprocess += detect_track;
        Ok((result, annotations))
    }

    /// [`sanitize`](Self::sanitize) over a fallible source: frames are
    /// ingested under `policy` (bounded retry, neighbor repair or skip) and
    /// the per-frame [`FrameHealthReport`] lands in
    /// [`SanitizedResult::health`]. Unrecoverable ingestion fails with
    /// [`VerroError::SourceExhausted`].
    ///
    /// Faults cannot perturb the privacy accounting: all Phase I randomness
    /// comes from an RNG seeded by `config.seed` after ingestion completes,
    /// and fault injection/recovery draw no values from it — degradation is
    /// utility-only (see DESIGN.md §9).
    pub fn sanitize_fallible<S: TryFrameSource + Sync>(
        &self,
        src: &S,
        annotations: &VideoAnnotations,
        policy: RecoveryPolicy,
    ) -> Result<SanitizedResult, VerroError> {
        let recovered = ingest_with_recovery(src, policy)?;
        let (video, health) = recovered.into_parts();
        let mut result = self.sanitize_impl(&video, annotations, None)?;
        result.health = health;
        Ok(result)
    }

    /// [`sanitize_per_class`](Self::sanitize_per_class) over a fallible
    /// source; see [`sanitize_fallible`](Self::sanitize_fallible).
    pub fn sanitize_per_class_fallible<S: TryFrameSource + Sync>(
        &self,
        src: &S,
        annotations: &VideoAnnotations,
        policy: RecoveryPolicy,
    ) -> Result<MultiClassResult, VerroError> {
        let recovered = ingest_with_recovery(src, policy)?;
        let (video, health) = recovered.into_parts();
        let mut result = self.sanitize_per_class(&video, annotations)?;
        result.health = health;
        Ok(result)
    }

    /// [`sanitize_with_tracking`](Self::sanitize_with_tracking) over a
    /// fallible source. Skipped frames (whose rasters are backfills) are
    /// excluded from the detection background and detector; the tracker
    /// coasts through them. See
    /// [`sanitize_fallible`](Self::sanitize_fallible) for the ε contract.
    pub fn sanitize_with_tracking_fallible<S: TryFrameSource + Sync>(
        &self,
        src: &S,
        detector: &DetectorConfig,
        tracker_config: TrackerConfig,
        class: ObjectClass,
        policy: RecoveryPolicy,
    ) -> Result<(SanitizedResult, VideoAnnotations), VerroError> {
        let recovered = ingest_with_recovery(src, policy)?;
        let (video, health) = recovered.into_parts();
        let skipped = health.skipped_frames();
        let (mut result, annotations) =
            self.track_and_sanitize(&video, detector, tracker_config, class, &skipped)?;
        result.health = health;
        Ok((result, annotations))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BackgroundMode, NoiseLevel, OptimizerStrategy};
    use verro_video::camera::Camera;
    use verro_video::generator::{GeneratedVideo, VideoSpec};
    use verro_video::geometry::Size;
    use verro_video::scene::SceneKind;

    fn tiny_video() -> GeneratedVideo {
        GeneratedVideo::generate(VideoSpec {
            name: "pipeline-test".into(),
            nominal_size: Size::new(160, 120),
            raster_scale: 1.0,
            num_frames: 40,
            num_objects: 5,
            scene: SceneKind::DaySquare,
            camera: Camera::Static,
            class: ObjectClass::Pedestrian,
            fps: 30.0,
            seed: 3,
            min_lifetime: 12,
            max_lifetime: 35,
            lifetime_mix: None,
            lighting_drift: 0.15,
            lighting_period: 8.0,
        })
    }

    fn fast_config() -> VerroConfig {
        let mut cfg = VerroConfig::default().with_flip(0.1).with_seed(7);
        cfg.background = BackgroundMode::TemporalMedian;
        cfg.keyframe.tau = 0.97;
        cfg.optimizer_noise_epsilon = None;
        cfg
    }

    #[test]
    fn end_to_end_sanitization() {
        let video = tiny_video();
        let verro = Verro::new(fast_config()).unwrap();
        let result = verro.sanitize(&video, video.annotations()).unwrap();

        assert!(result.privacy.is_consistent());
        assert!(result.phase1.num_picked() >= 2);
        assert_eq!(FrameSource::num_frames(&result.video), 40);
        assert_eq!(FrameSource::frame_size(&result.video), Size::new(160, 120));
        assert!(result.utility.retained_objects <= result.utility.original_objects);
        // A frame renders without panicking and differs from raw input.
        let f = result.video.frame(20);
        assert_eq!(f.size(), Size::new(160, 120));
    }

    #[test]
    fn deterministic_given_seed() {
        let video = tiny_video();
        let verro = Verro::new(fast_config()).unwrap();
        let a = verro.sanitize(&video, video.annotations()).unwrap();
        let b = verro.sanitize(&video, video.annotations()).unwrap();
        assert_eq!(a.phase2.synthetic, b.phase2.synthetic);
        assert_eq!(a.phase1.randomized, b.phase1.randomized);
        assert_eq!(a.utility, b.utility);
    }

    #[test]
    fn different_seeds_differ() {
        let video = tiny_video();
        let a = Verro::new(fast_config().with_seed(1))
            .unwrap()
            .sanitize(&video, video.annotations())
            .unwrap();
        let b = Verro::new(fast_config().with_seed(2))
            .unwrap()
            .sanitize(&video, video.annotations())
            .unwrap();
        assert_ne!(a.phase2.synthetic, b.phase2.synthetic);
    }

    #[test]
    fn low_flip_beats_high_flip_on_deviation() {
        let video = tiny_video();
        let dev = |f: f64| {
            let mut cfg = fast_config().with_flip(f);
            cfg.optimizer = OptimizerStrategy::AllKeyFrames;
            // Average over seeds to damp randomness.
            let mut total = 0.0;
            for seed in 0..5 {
                let r = Verro::new(cfg.clone().with_seed(seed))
                    .unwrap()
                    .sanitize(&video, video.annotations())
                    .unwrap();
                total += r.utility.trajectory_deviation;
            }
            total / 5.0
        };
        let low = dev(0.1);
        let high = dev(0.9);
        assert!(
            low < high + 0.05,
            "deviation at f=0.1 ({low}) should not exceed f=0.9 ({high})"
        );
    }

    #[test]
    fn epsilon_budget_mode_end_to_end() {
        let video = tiny_video();
        let mut cfg = fast_config();
        cfg.noise = NoiseLevel::EpsilonBudget(8.0);
        let r = Verro::new(cfg)
            .unwrap()
            .sanitize(&video, video.annotations())
            .unwrap();
        assert!((r.privacy.epsilon_rr - 8.0).abs() < 1e-9);
        assert!(r.privacy.is_consistent());
    }

    #[test]
    fn empty_annotations_sanitize_to_empty_video() {
        let video = tiny_video();
        let verro = Verro::new(fast_config()).unwrap();
        let empty_ann = VideoAnnotations::new(40);
        // Empty annotations are fine (no objects to protect) — check it runs.
        let r = verro.sanitize(&video, &empty_ann).unwrap();
        assert_eq!(r.utility.original_objects, 0);
        assert_eq!(r.phase2.synthetic.num_objects(), 0);
    }

    #[test]
    fn rejects_annotation_length_mismatch() {
        let video = tiny_video();
        let verro = Verro::new(fast_config()).unwrap();
        let short_ann = VideoAnnotations::new(17);
        assert_eq!(
            verro.sanitize(&video, &short_ann).unwrap_err(),
            VerroError::AnnotationMismatch {
                video_frames: 40,
                annotation_frames: 17,
            }
        );
        assert_eq!(
            verro.sanitize_per_class(&video, &short_ann).unwrap_err(),
            VerroError::AnnotationMismatch {
                video_frames: 40,
                annotation_frames: 17,
            }
        );
    }

    /// A zero-frame [`FrameSource`] (`InMemoryVideo` refuses to be empty).
    struct EmptyVideoSource;

    impl FrameSource for EmptyVideoSource {
        fn num_frames(&self) -> usize {
            0
        }
        fn frame_size(&self) -> Size {
            Size::new(16, 16)
        }
        fn frame(&self, _k: usize) -> verro_video::image::ImageBuffer {
            unreachable!("empty video has no frames")
        }
    }

    #[test]
    fn rejects_empty_video() {
        let verro = Verro::new(fast_config()).unwrap();
        let empty = EmptyVideoSource;
        let ann = VideoAnnotations::new(0);
        assert_eq!(
            verro.sanitize(&empty, &ann).unwrap_err(),
            VerroError::EmptyVideo
        );
        assert_eq!(
            verro.sanitize_per_class(&empty, &ann).unwrap_err(),
            VerroError::EmptyVideo
        );
        assert_eq!(
            verro
                .sanitize_with_tracking(
                    &empty,
                    &DetectorConfig::default(),
                    TrackerConfig::default(),
                    ObjectClass::Pedestrian,
                )
                .unwrap_err(),
            VerroError::EmptyVideo
        );
    }

    #[test]
    fn per_class_times_phases_separately() {
        let video = tiny_video();
        let verro = Verro::new(fast_config()).unwrap();
        let result = verro
            .sanitize_per_class(&video, video.annotations())
            .unwrap();
        // Both phases ran, so both accumulators must be non-zero.
        assert!(result.timings.phase1 > Duration::ZERO);
        assert!(result.timings.phase2 > Duration::ZERO);
    }

    #[test]
    fn tracking_pipeline_end_to_end() {
        let video = tiny_video();
        let verro = Verro::new(fast_config()).unwrap();
        let (result, tracked) = verro
            .sanitize_with_tracking(
                &video,
                &DetectorConfig::default(),
                TrackerConfig::default(),
                ObjectClass::Pedestrian,
            )
            .unwrap();
        // The tracker must find a sensible number of objects (generator
        // created 5; occlusion merges can reduce, flicker can add).
        assert!(tracked.num_objects() >= 1, "tracker found nothing");
        assert!(result.privacy.is_consistent());
    }

    #[test]
    fn multi_class_sanitization_partitions_by_type() {
        use verro_video::generator::CompositeVideo;
        let peds = tiny_video();
        let mut spec = peds.spec().clone();
        spec.class = ObjectClass::Vehicle;
        spec.num_objects = 3;
        spec.seed = 77;
        let vehicles = GeneratedVideo::generate(spec);
        let video = CompositeVideo::new(peds, vehicles);

        let verro = Verro::new(fast_config()).unwrap();
        let result = verro
            .sanitize_per_class(&video, video.annotations())
            .unwrap();
        assert_eq!(result.per_class.len(), 2);
        for cr in &result.per_class {
            assert!(cr.privacy.is_consistent(), "{:?}", cr.class);
        }
        // The merged video contains both classes' synthetic objects with
        // distinct IDs.
        let ids = result.video.annotations.ids();
        let distinct: std::collections::BTreeSet<_> = ids.iter().collect();
        assert_eq!(distinct.len(), ids.len());
        let classes: std::collections::BTreeSet<_> =
            result.video.annotations.tracks().map(|t| t.class).collect();
        // Both classes survive with high probability at f = 0.1; at minimum
        // the merge must not invent classes.
        assert!(classes
            .iter()
            .all(|c| matches!(c, ObjectClass::Pedestrian | ObjectClass::Vehicle)));
        // A frame renders.
        let _ = result.video.frame(10);
    }

    #[test]
    fn invalid_config_rejected_at_construction() {
        assert!(Verro::new(fast_config().with_flip(0.0)).is_err());
    }

    #[test]
    fn infallible_results_report_all_ok_health() {
        let video = tiny_video();
        let verro = Verro::new(fast_config()).unwrap();
        let r = verro.sanitize(&video, video.annotations()).unwrap();
        assert!(!r.health.is_degraded());
        assert_eq!(r.health.num_frames(), 40);
        let m = verro
            .sanitize_per_class(&video, video.annotations())
            .unwrap();
        assert!(!m.health.is_degraded());
    }

    #[test]
    fn fallible_clean_source_matches_infallible_run() {
        use verro_video::recover::RecoveryPolicy;
        let video = tiny_video();
        let verro = Verro::new(fast_config()).unwrap();
        let plain = verro.sanitize(&video, video.annotations()).unwrap();
        // The blanket TryFrameSource impl makes the infallible generator a
        // fallible source that never fails.
        let fallible = verro
            .sanitize_fallible(&video, video.annotations(), RecoveryPolicy::default())
            .unwrap();
        assert_eq!(fallible.privacy, plain.privacy);
        assert_eq!(fallible.phase1.randomized, plain.phase1.randomized);
        assert_eq!(fallible.phase2.synthetic, plain.phase2.synthetic);
        assert!(!fallible.health.is_degraded());
    }

    #[test]
    fn fallible_faulty_source_degrades_utility_not_epsilon() {
        use verro_video::fault::{FaultSchedule, FaultySource};
        use verro_video::recover::RecoveryPolicy;
        use verro_video::source::InMemoryVideo;
        let video = InMemoryVideo::collect_from(&tiny_video());
        let verro = Verro::new(fast_config()).unwrap();
        let clean = verro.sanitize(&video, tiny_video().annotations()).unwrap();
        // Transient-only faults always heal within the retry budget, so
        // every raster reaching the pipeline is bit-exact — ε and the whole
        // Phase I transcript must match the fault-free run.
        let schedule = FaultSchedule {
            seed: 11,
            transient_rate: 0.5,
            max_transient_run: 3,
            corrupt_rate: 0.0,
            truncate_rate: 0.0,
            missing_rate: 0.0,
            permanent_rate: 0.0,
        };
        let faulty = FaultySource::new(video.clone(), schedule);
        let r = verro
            .sanitize_fallible(
                &faulty,
                tiny_video().annotations(),
                RecoveryPolicy::default(),
            )
            .unwrap();
        assert_eq!(r.privacy, clean.privacy);
        assert_eq!(r.phase1.randomized, clean.phase1.randomized);
        assert!(
            r.health.num_retried() > 0,
            "schedule at rate 0.5 must retry"
        );
    }

    #[test]
    fn fallible_permanent_fault_is_source_exhausted() {
        use verro_video::fault::{FaultSchedule, FaultySource};
        use verro_video::recover::RecoveryPolicy;
        let video = tiny_video();
        let verro = Verro::new(fast_config()).unwrap();
        let schedule = FaultSchedule {
            seed: 1,
            transient_rate: 0.0,
            max_transient_run: 0,
            corrupt_rate: 0.0,
            truncate_rate: 0.0,
            missing_rate: 0.0,
            permanent_rate: 1.0,
        };
        let faulty = FaultySource::new(video.clone(), schedule);
        let err = verro
            .sanitize_fallible(&faulty, video.annotations(), RecoveryPolicy::default())
            .unwrap_err();
        assert!(matches!(err, VerroError::SourceExhausted { .. }));
    }

    #[test]
    fn fallible_tracking_skips_do_not_panic() {
        use verro_video::fault::{FaultSchedule, FaultySource};
        use verro_video::recover::{CorruptAction, RecoveryPolicy};
        let video = tiny_video();
        let verro = Verro::new(fast_config()).unwrap();
        let schedule = FaultSchedule {
            seed: 5,
            transient_rate: 0.2,
            max_transient_run: 2,
            corrupt_rate: 0.2,
            truncate_rate: 0.1,
            missing_rate: 0.1,
            permanent_rate: 0.0,
        };
        let faulty = FaultySource::new(video, schedule);
        let policy = RecoveryPolicy {
            on_corrupt: CorruptAction::Skip,
            ..RecoveryPolicy::default()
        };
        let (result, _tracked) = verro
            .sanitize_with_tracking_fallible(
                &faulty,
                &DetectorConfig::default(),
                TrackerConfig::default(),
                ObjectClass::Pedestrian,
                policy,
            )
            .unwrap();
        assert!(result.privacy.is_consistent());
        assert!(result.health.num_skipped() > 0, "schedule must skip frames");
        assert_eq!(result.health.num_frames(), 40);
    }
}
