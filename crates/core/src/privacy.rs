//! Privacy accounting for a full VERRO run.
//!
//! The randomized-response guarantee is `ε = ℓ*·ln((2−f)/f)` over the
//! picked key frames (Theorems 3.3/3.4); the optimizer's Laplace noise adds
//! its own ε′ for the count side channel (Section 3.3.3); Phase II is pure
//! post-processing and spends nothing (Theorem 4.1).

use crate::config::VerroConfig;
use crate::phase1::Phase1Output;
use serde::{Deserialize, Serialize};

/// A machine-readable privacy statement for a sanitized video.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrivacyStatement {
    /// ε of the randomized response (object indistinguishability bound).
    pub epsilon_rr: f64,
    /// ε′ of the optimizer's Laplace noise, if enabled.
    pub epsilon_optimizer: Option<f64>,
    /// The flip probability applied.
    pub flip: f64,
    /// Number of key frames that received budget (`ℓ*`).
    pub picked_frames: usize,
    /// Total ε under sequential composition.
    pub epsilon_total: f64,
}

impl PrivacyStatement {
    /// Builds the statement from the Phase I output and configuration.
    pub fn from_phase1(phase1: &Phase1Output, config: &VerroConfig) -> Self {
        let epsilon_optimizer = match config.optimizer {
            crate::config::OptimizerStrategy::AllKeyFrames => None,
            _ => config.optimizer_noise_epsilon,
        };
        Self {
            epsilon_rr: phase1.epsilon,
            epsilon_optimizer,
            flip: phase1.flip,
            picked_frames: phase1.num_picked(),
            epsilon_total: phase1.epsilon + epsilon_optimizer.unwrap_or(0.0),
        }
    }

    /// Whether the stated ε matches the `ℓ*·ln((2−f)/f)` identity — a
    /// self-check callers can assert.
    pub fn is_consistent(&self) -> bool {
        let expect = self.picked_frames as f64 * ((2.0 - self.flip) / self.flip).ln();
        (self.epsilon_rr - expect).abs() < 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{OptimizerStrategy, VerroConfig};
    use crate::phase1::run_phase1;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use verro_video::annotations::VideoAnnotations;
    use verro_video::geometry::BBox;
    use verro_video::object::{ObjectClass, ObjectId};
    use verro_vision::keyframe::{KeyFrameResult, Segment};

    fn setup() -> (VideoAnnotations, KeyFrameResult) {
        let mut ann = VideoAnnotations::new(20);
        for i in 0..4u32 {
            for k in (i as usize)..(i as usize + 10) {
                ann.record(
                    ObjectId(i),
                    ObjectClass::Pedestrian,
                    k,
                    BBox::new(k as f64, 5.0, 3.0, 6.0),
                );
            }
        }
        let kf = KeyFrameResult {
            segments: [3usize, 9, 15]
                .iter()
                .map(|&k| Segment::new(vec![k], k))
                .collect(),
        };
        (ann, kf)
    }

    #[test]
    fn statement_is_consistent() {
        let (ann, kf) = setup();
        let cfg = VerroConfig::default().with_flip(0.25);
        let mut rng = StdRng::seed_from_u64(1);
        let p1 = run_phase1(&ann, &kf, &cfg, &mut rng).unwrap();
        let s = PrivacyStatement::from_phase1(&p1, &cfg);
        assert!(s.is_consistent());
        assert_eq!(s.flip, 0.25);
        assert_eq!(s.epsilon_optimizer, Some(1.0));
        assert!((s.epsilon_total - s.epsilon_rr - 1.0).abs() < 1e-12);
    }

    #[test]
    fn all_key_frames_strategy_skips_optimizer_budget() {
        let (ann, kf) = setup();
        let mut cfg = VerroConfig::default().with_flip(0.25);
        cfg.optimizer = OptimizerStrategy::AllKeyFrames;
        let mut rng = StdRng::seed_from_u64(2);
        let p1 = run_phase1(&ann, &kf, &cfg, &mut rng).unwrap();
        let s = PrivacyStatement::from_phase1(&p1, &cfg);
        assert_eq!(s.epsilon_optimizer, None);
        assert_eq!(s.epsilon_total, s.epsilon_rr);
        assert_eq!(s.picked_frames, 3);
    }

    #[test]
    fn inconsistent_statement_detected() {
        let s = PrivacyStatement {
            epsilon_rr: 1.0,
            epsilon_optimizer: None,
            flip: 0.5,
            picked_frames: 10,
            epsilon_total: 1.0,
        };
        assert!(!s.is_consistent());
    }

    #[test]
    fn is_consistent_across_the_strategy_noise_matrix() {
        // Every optimizer strategy × optimizer-noise combination must yield
        // a statement satisfying the ℓ*·ln((2−f)/f) identity.
        let (ann, kf) = setup();
        let strategies = [
            OptimizerStrategy::LpRounding,
            OptimizerStrategy::Exact,
            OptimizerStrategy::AllKeyFrames,
        ];
        for (s_idx, &strategy) in strategies.iter().enumerate() {
            for (n_idx, noise) in [Some(1.0), Some(0.25), None].iter().enumerate() {
                let mut cfg = VerroConfig::default().with_flip(0.3);
                cfg.optimizer = strategy;
                cfg.optimizer_noise_epsilon = *noise;
                let mut rng = StdRng::seed_from_u64((s_idx * 10 + n_idx) as u64);
                let p1 = run_phase1(&ann, &kf, &cfg, &mut rng).unwrap();
                let s = PrivacyStatement::from_phase1(&p1, &cfg);
                assert!(s.is_consistent(), "{strategy:?} / {noise:?}: {s:?}");
                // AllKeyFrames never charges the side channel; the picked
                // strategies charge exactly the configured ε′.
                let expected_opt = match strategy {
                    OptimizerStrategy::AllKeyFrames => None,
                    _ => *noise,
                };
                assert_eq!(s.epsilon_optimizer, expected_opt, "{strategy:?}/{noise:?}");
                if strategy == OptimizerStrategy::AllKeyFrames {
                    assert_eq!(s.picked_frames, 3, "AllKeyFrames picks every key frame");
                }
            }
        }
    }

    #[test]
    fn epsilon_total_composes_rr_and_optimizer_exactly() {
        // Regression for the sequential-composition arithmetic: total must
        // be the exact float sum of the two components, not a re-derivation.
        let (ann, kf) = setup();
        for (flip, noise) in [(0.1, Some(1.0)), (0.3, Some(0.7)), (0.55, None)] {
            let mut cfg = VerroConfig::default().with_flip(flip);
            cfg.optimizer_noise_epsilon = noise;
            let mut rng = StdRng::seed_from_u64(77);
            let p1 = run_phase1(&ann, &kf, &cfg, &mut rng).unwrap();
            let s = PrivacyStatement::from_phase1(&p1, &cfg);
            assert_eq!(
                s.epsilon_total,
                s.epsilon_rr + s.epsilon_optimizer.unwrap_or(0.0),
                "f = {flip}, noise = {noise:?}"
            );
            assert_eq!(s.epsilon_rr, p1.epsilon);
        }
    }
}
