//! The traditional *detect-and-blur* privacy model (Section 2.2.1) — the
//! baseline whose weaknesses motivate VERRO.
//!
//! Detect-and-blur obscures each object's pixels but publishes the objects
//! at their **true coordinates in every frame**: object contents are hidden,
//! trajectories are not. An adversary with background knowledge (where an
//! individual walks, when they are at the scene) re-identifies blurred
//! objects trivially — the attack quantified in [`crate::adversary`].
//! A variant that replaces each object with a unique synthetic object
//! ("replace") is also provided; it hides appearance better but leaks the
//! same trajectories.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use verro_video::annotations::VideoAnnotations;
use verro_video::color::{distinct_color, Rgb};
use verro_video::geometry::Size;
use verro_video::image::ImageBuffer;
use verro_video::object::ObjectId;
use verro_video::source::FrameSource;

/// How the baseline obscures each detected object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BlurMode {
    /// Pixelate the object region (mosaic with the given cell size).
    Pixelate { cell: u32 },
    /// Replace the object with a uniquely colored synthetic object
    /// (Section 2.2.1's "synthetic objects" variant — one fixed color per
    /// identity, so the identity→color mapping persists across frames).
    Replace,
}

/// A detect-and-blur sanitized video: original frames with each annotated
/// object obscured in place. The published annotations (what a recipient
/// could re-derive by tracking) equal the *original* trajectories — that is
/// the point of the baseline's weakness.
#[derive(Debug, Clone)]
pub struct BlurredVideo<S> {
    source: S,
    annotations: VideoAnnotations,
    mode: BlurMode,
    colors: BTreeMap<ObjectId, Rgb>,
}

impl<S: FrameSource> BlurredVideo<S> {
    /// Wraps a video with per-frame blurring of the annotated objects.
    pub fn new(source: S, annotations: VideoAnnotations, mode: BlurMode) -> Self {
        assert_eq!(
            source.num_frames(),
            annotations.num_frames(),
            "annotations must cover the video"
        );
        let colors = annotations
            .ids()
            .into_iter()
            .map(|id| (id, distinct_color(id.0 as usize)))
            .collect();
        Self {
            source,
            annotations,
            mode,
            colors,
        }
    }

    /// The trajectories the published video exposes — identical to the
    /// input's (with IDs renumbered the way any tracker would assign them).
    pub fn published_annotations(&self) -> &VideoAnnotations {
        &self.annotations
    }

    fn pixelate(img: &mut ImageBuffer, x0: u32, y0: u32, x1: u32, y1: u32, cell: u32) {
        let cell = cell.max(1);
        let mut by = y0;
        while by < y1 {
            let mut bx = x0;
            while bx < x1 {
                // Mean color of the cell.
                let (mut rs, mut gs, mut bs, mut n) = (0u32, 0u32, 0u32, 0u32);
                for y in by..(by + cell).min(y1) {
                    for x in bx..(bx + cell).min(x1) {
                        let c = img.get(x, y);
                        rs += c.r as u32;
                        gs += c.g as u32;
                        bs += c.b as u32;
                        n += 1;
                    }
                }
                if n > 0 {
                    let mean = Rgb::new((rs / n) as u8, (gs / n) as u8, (bs / n) as u8);
                    for y in by..(by + cell).min(y1) {
                        for x in bx..(bx + cell).min(x1) {
                            img.set(x, y, mean);
                        }
                    }
                }
                bx += cell;
            }
            by += cell;
        }
    }
}

impl<S: FrameSource> FrameSource for BlurredVideo<S> {
    fn num_frames(&self) -> usize {
        self.source.num_frames()
    }

    fn frame_size(&self) -> Size {
        self.source.frame_size()
    }

    fn frame(&self, k: usize) -> ImageBuffer {
        let mut img = self.source.frame(k);
        for (id, bbox) in self.annotations.in_frame(k) {
            let Some((x0, y0, x1, y1)) = bbox.pixel_range(self.frame_size()) else {
                continue;
            };
            match self.mode {
                BlurMode::Pixelate { cell } => Self::pixelate(&mut img, x0, y0, x1, y1, cell),
                BlurMode::Replace => {
                    let color = self.colors.get(&id).copied().unwrap_or(Rgb::WHITE);
                    img.fill_ellipse(bbox, color);
                }
            }
        }
        img
    }

    fn fps(&self) -> f64 {
        self.source.fps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use verro_video::geometry::BBox;
    use verro_video::object::ObjectClass;
    use verro_video::source::InMemoryVideo;

    fn setup() -> (InMemoryVideo, VideoAnnotations) {
        let size = Size::new(32, 24);
        let mut frames = Vec::new();
        for k in 0..5usize {
            let mut img = ImageBuffer::new(size, Rgb::new(100, 100, 100));
            // A high-contrast textured "person".
            for dy in 0..8u32 {
                for dx in 0..4u32 {
                    let x = 5 + k as u32 * 2 + dx;
                    let c = if (dx + dy) % 2 == 0 {
                        Rgb::new(255, 0, 0)
                    } else {
                        Rgb::new(0, 0, 255)
                    };
                    img.set(x, 8 + dy, c);
                }
            }
            frames.push(img);
        }
        let video = InMemoryVideo::new(frames, 30.0);
        let mut ann = VideoAnnotations::new(5);
        for k in 0..5 {
            ann.record(
                ObjectId(0),
                ObjectClass::Pedestrian,
                k,
                BBox::new(5.0 + k as f64 * 2.0, 8.0, 4.0, 8.0),
            );
        }
        (video, ann)
    }

    #[test]
    fn pixelation_removes_texture_detail() {
        let (video, ann) = setup();
        let raw = video.frame(0);
        let blurred = BlurredVideo::new(video, ann, BlurMode::Pixelate { cell: 4 }).frame(0);
        // Inside the box, the checkerboard becomes flat: adjacent pixels
        // within a mosaic cell are equal.
        assert_eq!(blurred.get(5, 8), blurred.get(6, 8));
        assert_ne!(raw.get(5, 8), raw.get(6, 8));
        // Background untouched.
        assert_eq!(blurred.get(0, 0), raw.get(0, 0));
    }

    #[test]
    fn replace_mode_uses_stable_color_per_identity() {
        let (video, ann) = setup();
        let replaced = BlurredVideo::new(video, ann, BlurMode::Replace);
        // The ellipse center pixel carries the object's color in every frame.
        let c0 = replaced.frame(0).get(7, 12);
        let c4 = replaced.frame(4).get(15, 12);
        assert_eq!(c0, c4, "replacement color must persist across frames");
        assert_eq!(Some(c0), replaced.color_of_for_tests(ObjectId(0)));
    }

    #[test]
    fn published_trajectories_equal_original() {
        let (video, ann) = setup();
        let blurred = BlurredVideo::new(video, ann.clone(), BlurMode::Pixelate { cell: 3 });
        assert_eq!(blurred.published_annotations(), &ann);
    }

    impl<S: FrameSource> BlurredVideo<S> {
        fn color_of_for_tests(&self, id: ObjectId) -> Option<Rgb> {
            self.colors.get(&id).copied()
        }
    }
}
