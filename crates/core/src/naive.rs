//! Algorithm 1 — the naive per-frame randomized response baseline.
//!
//! Every object's full `m`-bit presence vector is randomized with budget
//! `ε/m` per bit. Section 3.1 shows why this destroys utility: for real
//! videos `m` is in the hundreds or thousands, the per-bit budget is
//! negligible, the keep-probability approaches ½ and the output is close to
//! uniform noise. The baseline is retained for the ablation benchmarks.

use crate::error::VerroError;
use crate::presence::PresenceMatrix;
use rand::Rng;
use verro_ldp::error::LdpError;
use verro_ldp::rr::{keep_probability, randomize_budget};

/// Output of the naive baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct NaiveOutput {
    /// Randomized presence matrix (same shape as the input).
    pub randomized: PresenceMatrix,
    /// The per-bit keep probability that was applied.
    pub keep_probability: f64,
    /// Total ε (the input budget — Algorithm 1 spends exactly ε).
    pub epsilon: f64,
}

/// Runs Algorithm 1: equal `ε/m` budget per frame, randomized response per
/// bit, for every object.
///
/// # Errors
///
/// Returns [`VerroError::Ldp`] when `epsilon` is not positive and finite.
pub fn randomize_naive<R: Rng + ?Sized>(
    matrix: &PresenceMatrix,
    epsilon: f64,
    rng: &mut R,
) -> Result<NaiveOutput, VerroError> {
    if !(epsilon > 0.0 && epsilon.is_finite()) {
        return Err(VerroError::Ldp(LdpError::InvalidEpsilon { epsilon }));
    }
    let m = matrix.num_frames();
    let rows = matrix
        .rows()
        .iter()
        .map(|row| randomize_budget(row, epsilon, rng))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(NaiveOutput {
        randomized: PresenceMatrix::from_rows(matrix.ids().to_vec(), rows, m),
        keep_probability: if m == 0 {
            1.0
        } else {
            keep_probability(epsilon / m as f64)?
        },
        epsilon,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use verro_ldp::bitvec::BitVec;
    use verro_video::object::ObjectId;

    fn sparse_matrix(m: usize, n: usize) -> PresenceMatrix {
        // Every object present in 10% of frames.
        let rows = (0..n)
            .map(|i| {
                let mut r = BitVec::zeros(m);
                let mut k = i;
                while k < m {
                    r.set(k, true);
                    k += 10;
                }
                r
            })
            .collect();
        PresenceMatrix::from_rows((0..n as u32).map(ObjectId).collect(), rows, m)
    }

    #[test]
    fn output_shape_matches_input() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = sparse_matrix(50, 4);
        let out = randomize_naive(&m, 5.0, &mut rng).unwrap();
        assert_eq!(out.randomized.num_objects(), 4);
        assert_eq!(out.randomized.num_frames(), 50);
        assert_eq!(out.epsilon, 5.0);
    }

    #[test]
    fn large_m_gives_near_uniform_output() {
        // The poor-utility phenomenon: with m = 1000 and ε = 1, roughly half
        // the bits come out 1 even though the input is 10% dense.
        let mut rng = StdRng::seed_from_u64(2);
        let m = sparse_matrix(1000, 3);
        let out = randomize_naive(&m, 1.0, &mut rng).unwrap();
        assert!((out.keep_probability - 0.5).abs() < 0.001);
        let density: f64 = out
            .randomized
            .rows()
            .iter()
            .map(|r| r.count_ones() as f64 / 1000.0)
            .sum::<f64>()
            / 3.0;
        assert!((density - 0.5).abs() < 0.05, "density = {density}");
    }

    #[test]
    fn small_m_large_eps_preserves_signal() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = sparse_matrix(10, 2);
        let out = randomize_naive(&m, 50.0, &mut rng).unwrap(); // ε/m = 5 per bit
        assert!(out.keep_probability > 0.99);
        for (orig, noisy) in m.rows().iter().zip(out.randomized.rows()) {
            assert!(orig.hamming(noisy) <= 1);
        }
    }

    #[test]
    fn rejects_nonpositive_epsilon() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(matches!(
            randomize_naive(&sparse_matrix(10, 1), 0.0, &mut rng),
            Err(VerroError::Ldp(LdpError::InvalidEpsilon { .. }))
        ));
    }
}
