//! Phase I utility-maximizing key-frame picking (Section 3.3).
//!
//! For key frame `k` with per-frame object count `c_k = Σ_i kb_i^k` out of
//! `n` objects, the expected absolute deviation contributed by allocating
//! budget to that frame under flip probability `f` is (Equation 9):
//!
//! ```text
//! cost_k = | n·f/2 − f·c_k |
//! ```
//!
//! The optimizer minimizes `Σ_k x_k·cost_k` subject to
//! `min_picked ≤ Σ_k x_k ≤ ℓ`, solved by LP relaxation + rounding
//! (Section 3.3.2) or exactly (oracle). Before the objective is formed the
//! counts are perturbed with `Lap(Δ/ε′)`, Δ = 1 (Section 3.3.3), so the
//! optimizer itself does not leak per-frame counts.

use crate::config::OptimizerStrategy;
use crate::error::VerroError;
use crate::presence::PresenceMatrix;
use rand::Rng;
use serde::{Deserialize, Serialize};
use verro_ldp::laplace::LaplaceMechanism;
use verro_lp::bip::{solve_exact, solve_lp_rounding};

/// Which objective the frame picker minimizes.
///
/// Equation 9 as printed multiplies the whole per-frame distortion by
/// `x_k`, so *not* picking a frame costs nothing and the optimum always
/// selects exactly `min_picked` frames — contradicting the paper's own
/// experiments (≈10 of 22 key frames picked for MOT01, Figure 5a). The
/// paper's Equation 6 third case (`E(R_i^k) = 0` when `x_k = 0`) implies an
/// unpicked frame loses all `c_k` presences recorded there, i.e. the full
/// distortion objective is
///
/// ```text
/// min Σ_k [ x_k·f·|n/2 − c_k|  +  (1 − x_k)·c_k ]
/// ```
///
/// which is what [`ObjectiveForm::FullDistortion`] implements (and what
/// reproduces the published behavior). [`ObjectiveForm::PaperEq9`] is the
/// literal printed objective, kept as an ablation arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ObjectiveForm {
    /// `min Σ_k [x_k·f·|n/2 − c_k| + (1−x_k)·c_k]` — distortion of both
    /// picked (randomization noise) and unpicked (lost presence) frames.
    FullDistortion,
    /// The literal Equation 9: `min Σ_k x_k·|n·f/2 − f·c_k|`.
    PaperEq9,
}

/// Outcome of the frame-picking optimization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PickResult {
    /// For each key frame, whether it was picked for budget allocation
    /// (`x_k` of Equation 9).
    pub picked: Vec<bool>,
    /// Per-key-frame costs used in the objective (after Laplace noise).
    pub costs: Vec<f64>,
    /// Objective value of the selection.
    pub objective: f64,
}

impl PickResult {
    /// Number of picked frames `Σ_k x_k`.
    pub fn count(&self) -> usize {
        self.picked.iter().filter(|&&p| p).count()
    }

    /// Indices of the picked key frames (into the key-frame list).
    pub fn indices(&self) -> Vec<usize> {
        self.picked
            .iter()
            .enumerate()
            .filter(|(_, &p)| p)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Computes the per-frame selection cost from (possibly noisy) counts.
///
/// * [`ObjectiveForm::PaperEq9`]: `|n·f/2 − f·c_k|` (always ≥ 0).
/// * [`ObjectiveForm::FullDistortion`]: the *marginal* cost of picking,
///   `f·|n/2 − c_k| − c_k` — negative whenever allocating budget to the
///   frame distorts less than dropping its `c_k` presences, so the solver
///   naturally picks every frame worth keeping.
pub fn cost_vector(counts: &[f64], num_objects: usize, f: f64, form: ObjectiveForm) -> Vec<f64> {
    counts
        .iter()
        .map(|&c| {
            let eq9 = (num_objects as f64 * f / 2.0 - f * c).abs();
            match form {
                ObjectiveForm::PaperEq9 => eq9,
                ObjectiveForm::FullDistortion => eq9 - c,
            }
        })
        .collect()
}

/// Picks key frames for budget allocation.
///
/// `reduced` is the presence matrix already projected onto the key frames
/// (ℓ columns). `f` is the flip probability the costs are evaluated at.
pub fn pick_key_frames<R: Rng + ?Sized>(
    reduced: &PresenceMatrix,
    f: f64,
    strategy: OptimizerStrategy,
    form: ObjectiveForm,
    optimizer_noise_epsilon: Option<f64>,
    min_picked: usize,
    rng: &mut R,
) -> Result<PickResult, VerroError> {
    let ell = reduced.num_frames();
    if ell < min_picked {
        return Err(VerroError::TooFewKeyFrames {
            available: ell,
            required: min_picked,
        });
    }

    // Per-frame counts, Laplace-noised per Section 3.3.3 (Δ = 1).
    let counts = noisy_counts(reduced, optimizer_noise_epsilon, rng)?;
    pick_from_counts(
        &counts,
        reduced.num_objects(),
        f,
        strategy,
        form,
        min_picked,
    )
}

/// Releases the per-frame counts used by the optimizer, Laplace-noised when
/// `optimizer_noise_epsilon` is set (Section 3.3.3, Δ = 1). Noising is a
/// *single* ε′-release: callers that re-optimize (e.g. the budget-mode
/// fixed point) must reuse the same noisy counts rather than re-drawing.
///
/// # Errors
///
/// Returns [`VerroError::Ldp`] when the noise epsilon is not positive and
/// finite (already rejected by [`VerroConfig::validate`](crate::config::VerroConfig::validate)
/// in the pipeline path).
pub fn noisy_counts<R: Rng + ?Sized>(
    reduced: &PresenceMatrix,
    optimizer_noise_epsilon: Option<f64>,
    rng: &mut R,
) -> Result<Vec<f64>, VerroError> {
    let raw_counts = reduced.column_counts();
    Ok(match optimizer_noise_epsilon {
        Some(eps) => LaplaceMechanism::new(1.0, eps)?.release_counts(&raw_counts, rng),
        None => raw_counts.iter().map(|&c| c as f64).collect(),
    })
}

/// The deterministic optimization core: picks frames given already-released
/// counts.
pub fn pick_from_counts(
    counts: &[f64],
    num_objects: usize,
    f: f64,
    strategy: OptimizerStrategy,
    form: ObjectiveForm,
    min_picked: usize,
) -> Result<PickResult, VerroError> {
    let ell = counts.len();
    if ell < min_picked {
        return Err(VerroError::TooFewKeyFrames {
            available: ell,
            required: min_picked,
        });
    }
    let costs = cost_vector(counts, num_objects, f, form);

    let (picked, objective) = match strategy {
        OptimizerStrategy::AllKeyFrames => {
            let picked = vec![true; ell];
            let objective = costs.iter().sum();
            (picked, objective)
        }
        OptimizerStrategy::LpRounding => {
            let sel = solve_lp_rounding(&costs, min_picked, ell)?;
            (sel.selected, sel.objective)
        }
        OptimizerStrategy::Exact => {
            let sel = solve_exact(&costs, min_picked, ell)?;
            (sel.selected, sel.objective)
        }
    };

    Ok(PickResult {
        picked,
        costs,
        objective,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use verro_ldp::bitvec::BitVec;
    use verro_video::object::ObjectId;

    /// A reduced matrix with controlled column counts.
    fn matrix_with_counts(counts: &[usize], n: usize) -> PresenceMatrix {
        let ell = counts.len();
        let rows: Vec<BitVec> = (0..n)
            .map(|i| {
                let mut r = BitVec::zeros(ell);
                for (k, &c) in counts.iter().enumerate() {
                    if i < c {
                        r.set(k, true);
                    }
                }
                r
            })
            .collect();
        PresenceMatrix::from_rows((0..n as u32).map(ObjectId).collect(), rows, ell)
    }

    #[test]
    fn cost_prefers_half_full_frames() {
        // n = 10, f = 0.5: cost_k = |2.5 - 0.5 c_k| → minimized at c_k = 5.
        let costs = cost_vector(&[0.0, 5.0, 10.0], 10, 0.5, ObjectiveForm::PaperEq9);
        assert!((costs[0] - 2.5).abs() < 1e-12);
        assert!(costs[1].abs() < 1e-12);
        assert!((costs[2] - 2.5).abs() < 1e-12);
    }

    #[test]
    fn exact_picks_minimum_cost_frames() {
        let mut rng = StdRng::seed_from_u64(1);
        // Counts: 0, 5, 10, 5, 1 with n = 10, f = 0.5: frames 1 and 3 cost 0.
        let m = matrix_with_counts(&[0, 5, 10, 5, 1], 10);
        let pick = pick_key_frames(
            &m,
            0.5,
            OptimizerStrategy::Exact,
            ObjectiveForm::PaperEq9,
            None,
            2,
            &mut rng,
        )
        .unwrap();
        assert!(pick.picked[1] && pick.picked[3], "{:?}", pick.picked);
        assert!(pick.objective.abs() < 1e-9);
        assert!(pick.count() >= 2);
    }

    #[test]
    fn full_distortion_picks_populated_frames() {
        let mut rng = StdRng::seed_from_u64(9);
        // Counts 0, 8, 1, 9, 7 with n = 10, f = 0.1: populated frames have
        // strongly negative marginal cost and must be picked; empty or
        // near-empty frames must not.
        let m = matrix_with_counts(&[0, 8, 1, 9, 7], 10);
        let pick = pick_key_frames(
            &m,
            0.1,
            OptimizerStrategy::Exact,
            ObjectiveForm::FullDistortion,
            None,
            2,
            &mut rng,
        )
        .unwrap();
        assert!(
            pick.picked[1] && pick.picked[3] && pick.picked[4],
            "{:?}",
            pick.picked
        );
        assert!(!pick.picked[0], "empty frame should not receive budget");
    }

    #[test]
    fn paper_eq9_picks_exactly_min_cardinality() {
        // The literal Equation 9 has non-negative costs, so the exact
        // optimum selects exactly `min_picked` frames — the behavior that
        // motivated the FullDistortion correction.
        let mut rng = StdRng::seed_from_u64(10);
        let m = matrix_with_counts(&[0, 8, 1, 9, 7], 10);
        let pick = pick_key_frames(
            &m,
            0.1,
            OptimizerStrategy::Exact,
            ObjectiveForm::PaperEq9,
            None,
            2,
            &mut rng,
        )
        .unwrap();
        assert_eq!(pick.count(), 2, "{:?}", pick.picked);
    }

    #[test]
    fn lp_matches_exact_without_noise() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = matrix_with_counts(&[1, 4, 7, 2, 6, 3], 8);
        let lp = pick_key_frames(
            &m,
            0.3,
            OptimizerStrategy::LpRounding,
            ObjectiveForm::PaperEq9,
            None,
            2,
            &mut rng,
        )
        .unwrap();
        let ex = pick_key_frames(
            &m,
            0.3,
            OptimizerStrategy::Exact,
            ObjectiveForm::PaperEq9,
            None,
            2,
            &mut rng,
        )
        .unwrap();
        assert!((lp.objective - ex.objective).abs() < 1e-6);
    }

    #[test]
    fn all_key_frames_picks_everything() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = matrix_with_counts(&[1, 2, 3], 4);
        let pick = pick_key_frames(
            &m,
            0.5,
            OptimizerStrategy::AllKeyFrames,
            ObjectiveForm::PaperEq9,
            None,
            2,
            &mut rng,
        )
        .unwrap();
        assert_eq!(pick.count(), 3);
        assert_eq!(pick.indices(), vec![0, 1, 2]);
    }

    #[test]
    fn too_few_key_frames_is_error() {
        let mut rng = StdRng::seed_from_u64(4);
        let m = matrix_with_counts(&[1], 2);
        let err = pick_key_frames(
            &m,
            0.5,
            OptimizerStrategy::LpRounding,
            ObjectiveForm::PaperEq9,
            None,
            2,
            &mut rng,
        )
        .unwrap_err();
        assert_eq!(
            err,
            VerroError::TooFewKeyFrames {
                available: 1,
                required: 2
            }
        );
    }

    #[test]
    fn laplace_noise_perturbs_costs_but_preserves_feasibility() {
        let mut rng = StdRng::seed_from_u64(5);
        let m = matrix_with_counts(&[0, 5, 10, 5, 1, 9, 2], 10);
        let noisy = pick_key_frames(
            &m,
            0.5,
            OptimizerStrategy::LpRounding,
            ObjectiveForm::PaperEq9,
            Some(0.5),
            2,
            &mut rng,
        )
        .unwrap();
        assert!(noisy.count() >= 2);
        assert_eq!(noisy.costs.len(), 7);
        // Noise makes the zero-cost frames generally non-zero.
        let clean_costs = cost_vector(
            &[0.0, 5.0, 10.0, 5.0, 1.0, 9.0, 2.0],
            10,
            0.5,
            ObjectiveForm::PaperEq9,
        );
        assert_ne!(noisy.costs, clean_costs);
    }

    #[test]
    fn noise_deviation_shrinks_with_larger_epsilon() {
        // With ε′ → ∞ the noisy costs approach the clean ones.
        let m = matrix_with_counts(&[3, 6, 2, 8], 10);
        let clean = cost_vector(&[3.0, 6.0, 2.0, 8.0], 10, 0.4, ObjectiveForm::PaperEq9);
        let spread = |eps: f64| {
            let mut rng = StdRng::seed_from_u64(6);
            let mut total = 0.0;
            for _ in 0..200 {
                let pick = pick_key_frames(
                    &m,
                    0.4,
                    OptimizerStrategy::Exact,
                    ObjectiveForm::PaperEq9,
                    Some(eps),
                    2,
                    &mut rng,
                )
                .unwrap();
                total += pick
                    .costs
                    .iter()
                    .zip(&clean)
                    .map(|(a, b)| (a - b).abs())
                    .sum::<f64>();
            }
            total
        };
        assert!(spread(100.0) < spread(0.2));
    }
}
