//! Phase II: synthetic video generation (Section 4).
//!
//! Using the randomized presence matrix of Phase I, each retained object is
//! assigned random candidate coordinates in the picked key frames, its
//! trajectory between those knots is interpolated (Lagrange by default), and
//! the trajectory is extended linearly to its "head" and "end" at the frame
//! border. All of this is post-processing of the Phase I output, so the
//! ε-guarantee carries through unchanged (Theorem 4.1).

use crate::config::{OvershootPolicy, VerroConfig};
use crate::coords::{assign_frame, expanded_pool, Candidate, FrameAssignment};
use crate::error::VerroError;
use crate::phase1::Phase1Output;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use verro_video::annotations::VideoAnnotations;
use verro_video::geometry::{BBox, Point, Size};
use verro_video::object::{ObjectClass, ObjectId};
use verro_vision::interp::{extrapolate_to_border, interpolate};

/// The complete result of Phase II.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Phase2Output {
    /// Full synthetic trajectories (interpolated + border-extended).
    pub synthetic: VideoAnnotations,
    /// Pre-interpolation annotations: only the assigned key-frame knots.
    /// The Figure 5(b/d/f) "before Phase II" series is measured on these.
    pub knots: VideoAnnotations,
    /// Mapping from original object ID to its synthetic replacement.
    /// This mapping exists only owner-side (for utility evaluation); the
    /// published video carries no link back to the original objects.
    pub mapping: BTreeMap<ObjectId, ObjectId>,
    /// Original objects lost by randomization (`R_i = ∅`, Section 4.2.1).
    pub lost: Vec<ObjectId>,
    /// The per-frame assignments that produced the knots.
    pub assignments: Vec<FrameAssignment>,
}

/// Linearly interpolates `(w, h)` box extents between knots; frames outside
/// the knot range take the nearest knot's extents.
fn size_at(knots: &[(usize, f64, f64)], frame: usize) -> (f64, f64) {
    debug_assert!(!knots.is_empty());
    let t = frame as f64;
    let first = knots[0];
    let last = knots[knots.len() - 1];
    if t <= first.0 as f64 {
        return (first.1, first.2);
    }
    if t >= last.0 as f64 {
        return (last.1, last.2);
    }
    for w in knots.windows(2) {
        let (f0, w0, h0) = w[0];
        let (f1, w1, h1) = w[1];
        if frame <= f1 {
            let alpha = (t - f0 as f64) / (f1 as f64 - f0 as f64);
            return (w0 + (w1 - w0) * alpha, h0 + (h1 - h0) * alpha);
        }
    }
    (last.1, last.2)
}

/// Returns the maximal contiguous (consecutive-frame) run of `samples`
/// containing the most elements of `anchor_frames`, breaking ties toward
/// the longer run. `samples` must be sorted by frame.
fn best_contiguous_run<'a>(
    samples: &'a [(usize, BBox)],
    anchor_frames: &[usize],
) -> &'a [(usize, BBox)] {
    if samples.is_empty() {
        return samples;
    }
    let mut best: (usize, usize, std::ops::Range<usize>) = (0, 0, 0..0);
    let mut start = 0usize;
    let mut i = 1usize;
    loop {
        let run_ended = i == samples.len() || samples[i].0 != samples[i - 1].0 + 1;
        if run_ended {
            let range = start..i;
            let anchors = samples[range.clone()]
                .iter()
                .filter(|(f, _)| anchor_frames.binary_search(f).is_ok())
                .count();
            let len = range.len();
            if (anchors, len) > (best.0, best.1) {
                best = (anchors, len, range);
            }
            if i == samples.len() {
                break;
            }
            start = i;
        }
        i += 1;
    }
    &samples[best.2]
}

/// Runs Phase II.
///
/// `annotations` are the original (owner-side) annotations whose coordinates
/// form the candidate pools; `key_frames` is the Algorithm 2 result;
/// `frame_size` bounds the border-termination predicate.
///
/// # Errors
///
/// Propagates typed errors from the LDP debias step and the interpolation
/// routines; with a validated configuration and a Phase I output from
/// [`run_phase1`](crate::phase1::run_phase1) these paths are unreachable.
pub fn run_phase2<R: Rng + ?Sized>(
    phase1: &Phase1Output,
    annotations: &VideoAnnotations,
    key_frames: &verro_vision::keyframe::KeyFrameResult,
    frame_size: Size,
    config: &VerroConfig,
    rng: &mut R,
) -> Result<Phase2Output, VerroError> {
    let num_frames = annotations.num_frames();
    let ids = phase1.randomized.ids().to_vec();

    // 1. Random coordinate assignment per picked key frame (Section 4.2.2).
    let n = phase1.randomized.num_objects();
    let mut assignments: Vec<FrameAssignment> = Vec::with_capacity(phase1.num_picked());
    for (j, &g) in phase1.picked_frames.iter().enumerate() {
        let mut rows: Vec<usize> = (0..n)
            .filter(|&i| phase1.randomized.row(i).get(j))
            .collect();
        if config.count_correction {
            // Debias the insertion count (post-processing of R, no extra ε):
            // E[Σ R_i^k] = c_k(1−f/2) + (n−c_k)f/2, so the unbiased estimate
            // of the true count is (Σ R − n·f/2)/(1 − f). Randomly subsample
            // the present rows down to it — uniformly, so every object is
            // still treated identically.
            let target = verro_ldp::estimate::debias_count(
                rows.len() as f64,
                n,
                phase1.flip.clamp(0.0, 0.999),
            )?
            .round()
            .clamp(0.0, rows.len() as f64) as usize;
            if target < rows.len() {
                use rand::seq::SliceRandom;
                rows.shuffle(rng);
                rows.truncate(target);
                rows.sort_unstable();
            }
        }
        let pool = expanded_pool(annotations, key_frames, g, rows.len());
        assignments.push(assign_frame(g, &rows, &pool, frame_size, rng));
    }

    // 2. Collect knots per object row.
    let mut knots_per_row: BTreeMap<usize, Vec<(usize, Candidate)>> = BTreeMap::new();
    for a in &assignments {
        for &(row, cand) in &a.placements {
            knots_per_row.entry(row).or_default().push((a.frame, cand));
        }
    }
    for knots in knots_per_row.values_mut() {
        knots.sort_by_key(|(f, _)| *f);
    }

    // 3. Interpolate + extend each retained object's trajectory.
    let mut synthetic = VideoAnnotations::new(num_frames);
    let mut knot_ann = VideoAnnotations::new(num_frames);
    let mut mapping = BTreeMap::new();
    let mut lost = Vec::new();
    let mut next_synth = 0u32;

    for (row, &orig_id) in ids.iter().enumerate() {
        let Some(knots) = knots_per_row.get(&row) else {
            lost.push(orig_id);
            continue;
        };
        let class = annotations
            .track(orig_id)
            .map(|t| t.class)
            .unwrap_or(ObjectClass::Pedestrian);
        let synth_id = ObjectId(next_synth);
        next_synth += 1;
        mapping.insert(orig_id, synth_id);

        // Knot-level annotations (pre-interpolation utility).
        for &(frame, cand) in knots {
            knot_ann.record(synth_id, class, frame, cand.bbox());
        }

        // Interpolate centers, then extend to the frame border.
        let center_knots: Vec<(usize, Point)> = knots.iter().map(|&(f, c)| (f, c.center)).collect();
        let interpolated = interpolate(&center_knots, config.interp)?;
        // Head/end extension budget: half the typical spacing between
        // picked key frames per side. An object's first/last knots sit on
        // average half a gap inside its true at-scene window, so this cap
        // makes the expected synthetic span match the expected original
        // lifetime; without it, slow-moving extrapolations crawl toward the
        // border for hundreds of frames and inflate per-frame counts.
        let max_ext = (num_frames / (2 * phase1.num_picked().max(1))).max(4);
        let full = extrapolate_to_border(&interpolated, num_frames, max_ext, |p| {
            frame_size.contains(p)
        });

        let size_knots: Vec<(usize, f64, f64)> =
            knots.iter().map(|&(f, c)| (f, c.w, c.h)).collect();
        let first_knot = knots[0].0;
        let last_knot = knots[knots.len() - 1].0;
        let visible: Vec<(usize, BBox)> = full
            .into_iter()
            .filter_map(|(frame, center)| {
                // Lagrange interpolation can overshoot the frame between two
                // knots; the policy decides whether those samples are
                // suppressed (the paper's behavior — keeps counts accurate,
                // allows track gaps) or clamped to the border (contiguous
                // tracks). Extrapolated head/end overshoot always ends the
                // trajectory.
                let center = match config.overshoot {
                    OvershootPolicy::Clamp if (first_knot..=last_knot).contains(&frame) => {
                        center.clamp_to(frame_size)
                    }
                    _ => center,
                };
                let (w, h) = size_at(&size_knots, frame);
                let bbox = BBox::from_center(center, w, h);
                bbox.intersects_frame(frame_size).then_some((frame, bbox))
            })
            .collect();
        match config.overshoot {
            OvershootPolicy::Suppress => {
                for (frame, bbox) in visible {
                    synthetic.record(synth_id, class, frame, bbox);
                }
            }
            OvershootPolicy::Clamp => {
                // Clamped trajectories are contiguous except for head/end
                // border exits; keep the run covering the most knots.
                let knot_frames: Vec<usize> = knots.iter().map(|&(f, _)| f).collect();
                for (frame, bbox) in best_contiguous_run(&visible, &knot_frames) {
                    synthetic.record(synth_id, class, *frame, *bbox);
                }
            }
        }
    }

    Ok(Phase2Output {
        synthetic,
        knots: knot_ann,
        mapping,
        lost,
        assignments,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{OptimizerStrategy, VerroConfig};
    use crate::phase1::run_phase1;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use verro_video::object::ObjectClass;
    use verro_vision::keyframe::{KeyFrameResult, Segment};

    fn annotations() -> VideoAnnotations {
        let mut ann = VideoAnnotations::new(40);
        for i in 0..5u32 {
            let start = (i as usize) * 4;
            for k in start..(start + 20).min(40) {
                let x = 5.0 + k as f64 * 3.0;
                ann.record(
                    ObjectId(i),
                    ObjectClass::Pedestrian,
                    k,
                    BBox::new(x, 40.0 + i as f64 * 8.0, 6.0, 12.0),
                );
            }
        }
        ann
    }

    fn key_frames() -> KeyFrameResult {
        KeyFrameResult {
            segments: (0..5)
                .map(|s| Segment::new((s * 8..(s + 1) * 8).collect(), s * 8 + 4))
                .collect(),
        }
    }

    fn config() -> VerroConfig {
        let mut c = VerroConfig::default().with_flip(0.1);
        c.optimizer_noise_epsilon = None;
        c.optimizer = OptimizerStrategy::AllKeyFrames;
        c
    }

    fn run_both(seed: u64) -> (Phase1Output, Phase2Output) {
        let ann = annotations();
        let kf = key_frames();
        let cfg = config();
        let mut rng = StdRng::seed_from_u64(seed);
        let p1 = run_phase1(&ann, &kf, &cfg, &mut rng).unwrap();
        let p2 = run_phase2(&p1, &ann, &kf, Size::new(200, 150), &cfg, &mut rng).unwrap();
        (p1, p2)
    }

    #[test]
    fn retained_objects_have_synthetic_tracks() {
        let (p1, p2) = run_both(1);
        let retained = p1.retained_rows().len();
        assert_eq!(p2.synthetic.num_objects(), retained);
        assert_eq!(p2.mapping.len(), retained);
        assert_eq!(p2.lost.len() + retained, 5);
    }

    #[test]
    fn knots_subset_of_picked_frames() {
        let (p1, p2) = run_both(2);
        for t in p2.knots.tracks() {
            for o in t.observations() {
                assert!(
                    p1.picked_frames.contains(&o.frame),
                    "knot at non-picked frame {}",
                    o.frame
                );
            }
        }
    }

    #[test]
    fn trajectories_are_contiguous_under_clamp_policy() {
        let ann = annotations();
        let kf = key_frames();
        let mut cfg = config();
        cfg.overshoot = crate::config::OvershootPolicy::Clamp;
        let mut rng = StdRng::seed_from_u64(3);
        let p1 = run_phase1(&ann, &kf, &cfg, &mut rng).unwrap();
        let p2 = run_phase2(&p1, &ann, &kf, Size::new(200, 150), &cfg, &mut rng).unwrap();
        for t in p2.synthetic.tracks() {
            let frames: Vec<usize> = t.observations().iter().map(|o| o.frame).collect();
            for w in frames.windows(2) {
                assert_eq!(w[1], w[0] + 1, "gap in synthetic track {}", t.id);
            }
        }
    }

    #[test]
    fn suppress_policy_frames_strictly_increasing() {
        let (_, p2) = run_both(3);
        for t in p2.synthetic.tracks() {
            let frames: Vec<usize> = t.observations().iter().map(|o| o.frame).collect();
            for w in frames.windows(2) {
                assert!(w[1] > w[0]);
            }
        }
    }

    #[test]
    fn synthetic_covers_its_knots_run() {
        // The synthetic track is the contiguous visible run covering the
        // most knots: it must contain at least one knot frame, and when all
        // knots are inside the frame it spans all of them.
        let (_, p2) = run_both(4);
        for t in p2.knots.tracks() {
            let synth = p2.synthetic.track(t.id).expect("synthetic track exists");
            let covered = t
                .observations()
                .iter()
                .filter(|o| synth.present_at(o.frame))
                .count();
            assert!(covered >= 1, "synthetic track misses all knots of {}", t.id);
            assert!(synth.len() >= covered);
        }
    }

    #[test]
    fn boxes_touch_frame() {
        let (_, p2) = run_both(5);
        let size = Size::new(200, 150);
        for t in p2.synthetic.tracks() {
            for o in t.observations() {
                assert!(o.bbox.intersects_frame(size));
                assert!(o.bbox.w > 0.0 && o.bbox.h > 0.0);
            }
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let (_, a) = run_both(7);
        let (_, b) = run_both(7);
        assert_eq!(a, b);
    }

    #[test]
    fn size_at_interpolates_linearly() {
        let knots = vec![(0usize, 10.0, 20.0), (10usize, 20.0, 40.0)];
        assert_eq!(size_at(&knots, 0), (10.0, 20.0));
        assert_eq!(size_at(&knots, 5), (15.0, 30.0));
        assert_eq!(size_at(&knots, 10), (20.0, 40.0));
        // Outside the range: clamped to nearest.
        assert_eq!(size_at(&knots, 15), (20.0, 40.0));
    }

    #[test]
    fn count_correction_reduces_spurious_insertions() {
        // A sparse matrix (few true presences, many objects) at high f:
        // raw insertion counts inflate by ~n·f/2 per frame; correction pulls
        // them back toward the true counts.
        let mut ann = VideoAnnotations::new(40);
        for i in 0..30u32 {
            // Each object present only in frames 0..3.
            for k in 0..3 {
                ann.record(
                    ObjectId(i),
                    ObjectClass::Pedestrian,
                    k,
                    BBox::new(5.0 + i as f64 * 3.0, 60.0, 5.0, 10.0),
                );
            }
        }
        let kf = key_frames();
        let f = 0.8;
        let total_inserted = |correct: bool, seed: u64| -> usize {
            let mut cfg = config().with_flip(f);
            cfg.count_correction = correct;
            let mut rng = StdRng::seed_from_u64(seed);
            let p1 = run_phase1(&ann, &kf, &cfg, &mut rng).unwrap();
            let p2 = run_phase2(&p1, &ann, &kf, Size::new(200, 150), &cfg, &mut rng).unwrap();
            p2.assignments.iter().map(|a| a.placements.len()).sum()
        };
        let mut raw = 0;
        let mut corrected = 0;
        for seed in 0..16 {
            raw += total_inserted(false, seed);
            corrected += total_inserted(true, seed);
        }
        // No picked key frame lies in 0..3, so raw insertions are mostly
        // spurious. Empty-pool suppression already removes the insertions
        // that have no candidate coordinates at all, so the correction's
        // remaining margin is the ~n·f/2 inflation on frames that still
        // have a (neighbor-expanded) pool.
        assert!(
            corrected * 3 < raw * 2,
            "corrected {corrected} should be well below raw {raw}"
        );
    }

    #[test]
    fn mapping_ids_are_dense() {
        let (_, p2) = run_both(8);
        let mut synth_ids: Vec<u32> = p2.mapping.values().map(|id| id.0).collect();
        synth_ids.sort();
        for (i, id) in synth_ids.iter().enumerate() {
            assert_eq!(*id, i as u32);
        }
    }
}
