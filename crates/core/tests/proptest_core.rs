//! Property-based tests for the VERRO core: Phase I/II structural
//! invariants under randomized annotations, configurations and seeds.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;
use verro_core::config::{OptimizerStrategy, VerroConfig};
use verro_core::metrics::{trajectory_deviation, trajectory_deviation_absolute};
use verro_core::phase1::run_phase1;
use verro_core::phase2::run_phase2;
use verro_core::presence::PresenceMatrix;
use verro_video::annotations::VideoAnnotations;
use verro_video::geometry::{BBox, Size};
use verro_video::object::{ObjectClass, ObjectId};
use verro_vision::keyframe::{KeyFrameResult, Segment};

/// Random annotations: up to 8 objects with contiguous runs in a 60-frame
/// video.
fn arb_annotations() -> impl Strategy<Value = VideoAnnotations> {
    prop::collection::vec(
        (0usize..50, 5usize..30, 5.0..150.0f64, 20.0..100.0f64),
        1..8,
    )
    .prop_map(|objs| {
        let mut ann = VideoAnnotations::new(60);
        for (i, (start, len, x0, y0)) in objs.into_iter().enumerate() {
            let end = (start + len).min(59);
            for k in start..=end {
                ann.record(
                    ObjectId(i as u32),
                    ObjectClass::Pedestrian,
                    k,
                    BBox::new(x0 + (k - start) as f64 * 2.0, y0, 6.0, 12.0),
                );
            }
        }
        ann
    })
}

/// Evenly spaced single-frame segments as a synthetic Algorithm 2 result.
fn key_frames(step: usize) -> KeyFrameResult {
    KeyFrameResult {
        segments: (0..60 / step)
            .map(|s| Segment::new((s * step..(s + 1) * step).collect(), s * step + step / 2))
            .collect(),
    }
}

fn config(f: f64, strategy: OptimizerStrategy) -> VerroConfig {
    let mut cfg = VerroConfig::default().with_flip(f);
    cfg.optimizer = strategy;
    cfg.optimizer_noise_epsilon = None;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn presence_matrix_counts_are_consistent(ann in arb_annotations()) {
        let m = PresenceMatrix::from_annotations(&ann);
        prop_assert_eq!(m.num_objects(), ann.num_objects());
        prop_assert_eq!(m.num_frames(), 60);
        // Column counts match the per-frame annotation counts.
        prop_assert_eq!(m.column_counts(), ann.per_frame_counts());
        // Row popcounts match track lengths.
        for (row, track) in m.rows().iter().zip(ann.tracks()) {
            prop_assert_eq!(row.count_ones(), track.len());
        }
    }

    #[test]
    fn phase1_invariants(
        ann in arb_annotations(),
        f in 0.05..0.95f64,
        seed in any::<u64>(),
        exact in any::<bool>(),
    ) {
        let strategy = if exact { OptimizerStrategy::Exact } else { OptimizerStrategy::LpRounding };
        let kf = key_frames(6);
        let cfg = config(f, strategy);
        let mut rng = StdRng::seed_from_u64(seed);
        let p1 = run_phase1(&ann, &kf, &cfg, &mut rng).unwrap();

        // Picked frames are a sorted subset of key frames.
        let kf_set: BTreeSet<usize> = kf.key_frames().into_iter().collect();
        for w in p1.picked_frames.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        for g in &p1.picked_frames {
            prop_assert!(kf_set.contains(g));
        }
        prop_assert!(p1.num_picked() >= cfg.min_picked);

        // ε identity.
        let expect = p1.num_picked() as f64 * ((2.0 - f) / f).ln();
        prop_assert!((p1.epsilon - expect).abs() < 1e-9);

        // Matrix shapes.
        prop_assert_eq!(p1.original.num_frames(), p1.num_picked());
        prop_assert_eq!(p1.randomized.num_frames(), p1.num_picked());
        prop_assert_eq!(p1.original.num_objects(), ann.num_objects());
    }

    #[test]
    fn phase2_invariants(
        ann in arb_annotations(),
        f in 0.05..0.95f64,
        seed in any::<u64>(),
    ) {
        let kf = key_frames(10);
        let cfg = config(f, OptimizerStrategy::AllKeyFrames);
        let mut rng = StdRng::seed_from_u64(seed);
        let p1 = run_phase1(&ann, &kf, &cfg, &mut rng).unwrap();
        let size = Size::new(300, 200);
        let p2 = run_phase2(&p1, &ann, &kf, size, &cfg, &mut rng).unwrap();

        // Retained + lost = all objects; mapping is injective.
        prop_assert_eq!(p2.mapping.len() + p2.lost.len(), ann.num_objects());
        let synth_ids: BTreeSet<_> = p2.mapping.values().collect();
        prop_assert_eq!(synth_ids.len(), p2.mapping.len());
        prop_assert_eq!(p2.synthetic.num_objects(), p2.mapping.len());

        // Knots live only at picked frames; synthetic tracks are contiguous
        // and span at least their knots.
        let picked: BTreeSet<usize> = p1.picked_frames.iter().copied().collect();
        for t in p2.knots.tracks() {
            for o in t.observations() {
                prop_assert!(picked.contains(&o.frame));
            }
            // The synthetic run covers at least one knot.
            let synth = p2.synthetic.track(t.id).unwrap();
            let covered = t
                .observations()
                .iter()
                .filter(|o| synth.present_at(o.frame))
                .count();
            prop_assert!(covered >= 1);
        }
        for t in p2.synthetic.tracks() {
            let frames: Vec<usize> = t.observations().iter().map(|o| o.frame).collect();
            for w in frames.windows(2) {
                prop_assert!(w[1] > w[0]);
            }
            for o in t.observations() {
                prop_assert!(o.bbox.intersects_frame(size));
            }
        }

        // Under the Clamp policy, synthetic tracks are fully contiguous.
        let mut cfg_clamp = cfg.clone();
        cfg_clamp.overshoot = verro_core::config::OvershootPolicy::Clamp;
        let mut rng2 = StdRng::seed_from_u64(seed ^ 1);
        let p1c = run_phase1(&ann, &kf, &cfg_clamp, &mut rng2).unwrap();
        let p2c = run_phase2(&p1c, &ann, &kf, size, &cfg_clamp, &mut rng2).unwrap();
        for t in p2c.synthetic.tracks() {
            let frames: Vec<usize> = t.observations().iter().map(|o| o.frame).collect();
            for w in frames.windows(2) {
                prop_assert_eq!(w[1], w[0] + 1);
            }
        }
    }

    #[test]
    fn deviation_metrics_are_ordered_and_bounded(
        ann in arb_annotations(),
        f in 0.1..0.9f64,
        seed in any::<u64>(),
    ) {
        let kf = key_frames(8);
        let cfg = config(f, OptimizerStrategy::AllKeyFrames);
        let mut rng = StdRng::seed_from_u64(seed);
        let p1 = run_phase1(&ann, &kf, &cfg, &mut rng).unwrap();
        let p2 = run_phase2(&p1, &ann, &kf, Size::new(300, 200), &cfg, &mut rng).unwrap();

        let signed = trajectory_deviation(&ann, &p2.synthetic, &p2.mapping);
        let absolute = trajectory_deviation_absolute(&ann, &p2.synthetic, &p2.mapping);
        prop_assert!(signed >= 0.0);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&absolute));
        // |mean| <= mean(|.|): the signed metric never exceeds the absolute
        // one when contributions share the missing-frame convention, except
        // that signed per-pair terms can exceed 1; allow slack.
        prop_assert!(signed <= absolute + 1.0);
    }

    #[test]
    fn phase1_is_deterministic_per_seed(
        ann in arb_annotations(),
        seed in any::<u64>(),
    ) {
        let kf = key_frames(6);
        let cfg = config(0.3, OptimizerStrategy::LpRounding);
        let a = run_phase1(&ann, &kf, &cfg, &mut StdRng::seed_from_u64(seed)).unwrap();
        let b = run_phase1(&ann, &kf, &cfg, &mut StdRng::seed_from_u64(seed)).unwrap();
        prop_assert_eq!(a, b);
    }
}
