//! Shared harness code for the VERRO benchmark/report suite.

pub mod presets;
