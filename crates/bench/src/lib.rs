//! Shared harness code for the VERRO benchmark/report suite.

pub mod jval;
pub mod presets;
pub mod provenance;
