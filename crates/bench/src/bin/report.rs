//! Regenerates every table and figure of the paper's evaluation
//! (Section 6) on the three simulated MOT16 videos.
//!
//! ```sh
//! cargo run -p verro-bench --bin report --release -- --all
//! # or individual artifacts:
//! cargo run -p verro-bench --bin report --release -- --table2 --fig5-counts
//! ```
//!
//! Output: human-readable tables on stdout plus CSV/PPM/JSON artifacts
//! under `results/`.

use rand::SeedableRng;
use serde::Serialize;
use std::collections::BTreeMap;
use std::fs;
use std::path::Path;
use std::time::Instant;
use verro_bench::presets::{eval_config, eval_video, F_SWEEP};
use verro_core::metrics::{trajectory_deviation, trajectory_deviation_absolute, trajectory_series};
use verro_core::phase1::run_phase1;
use verro_core::phase2::run_phase2;
use verro_core::synthesis::reconstruct_background;
use verro_core::Verro;
use verro_video::codec::encode_video;
use verro_video::generator::{GeneratedVideo, MotPreset};
use verro_video::source::{FrameSource, InMemoryVideo};
use verro_video::stats::VideoCharacteristics;
use verro_vision::inpaint::InpaintConfig;
use verro_vision::keyframe::{extract_key_frames, KeyFrameResult};

const RESULTS_DIR: &str = "results";
/// Trials averaged for the stochastic series.
const TRIALS: u64 = 5;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = args.is_empty() || args.iter().any(|a| a == "--all");
    let want = |flag: &str| all || args.iter().any(|a| a == flag);
    fs::create_dir_all(RESULTS_DIR).expect("create results dir");

    println!("== VERRO evaluation report (simulated MOT16 presets) ==\n");
    let t0 = Instant::now();

    // Generate the three videos once; key frames once per video.
    let videos: Vec<(MotPreset, GeneratedVideo)> = MotPreset::ALL
        .iter()
        .map(|&p| {
            let v = eval_video(p);
            println!(
                "generated {}: {} frames, {} objects, raster {}",
                v.spec().name,
                v.spec().num_frames,
                v.annotations().num_objects(),
                v.spec().raster_size()
            );
            (p, v)
        })
        .collect();

    let keyframes: Vec<KeyFrameResult> = videos
        .iter()
        .map(|(_, v)| {
            let t = Instant::now();
            let kf = extract_key_frames(v, &eval_config(0.1, 0).keyframe).expect("clip is non-empty");
            println!(
                "key frames for {}: {} segments in {:.1?}",
                v.spec().name,
                kf.num_key_frames(),
                t.elapsed()
            );
            kf
        })
        .collect();
    println!();

    let mut report = serde_json::Map::new();

    if want("--table1") {
        report.insert("table1".into(), table1(&videos));
    }
    if want("--table2") {
        report.insert("table2".into(), table2(&videos, &keyframes));
    }
    if want("--fig5-counts") {
        report.insert("fig5_counts".into(), fig5_counts(&videos, &keyframes));
    }
    if want("--fig5-deviation") {
        report.insert("fig5_deviation".into(), fig5_deviation(&videos, &keyframes));
    }
    if want("--fig678") {
        report.insert("fig678".into(), fig678(&videos, &keyframes));
    }
    if want("--fig91011") {
        report.insert("fig91011".into(), fig91011(&videos, &keyframes));
    }
    if want("--fig12") {
        report.insert("fig12".into(), fig12(&videos, &keyframes));
    }
    if want("--fig13") {
        report.insert("fig13".into(), fig13(&videos, &keyframes));
    }
    if want("--table3") {
        report.insert("table3".into(), table3(&videos));
    }
    if want("--ablate") {
        report.insert("ablations".into(), ablations(&videos, &keyframes));
    }
    if want("--bench-inpaint") {
        report.insert("bench_inpaint".into(), bench_inpaint());
    }
    if want("--bench-pipeline") {
        report.insert("bench_pipeline".into(), bench_pipeline());
    }
    if want("--audit") {
        report.insert("audit".into(), audit());
    }

    let json = serde_json::to_string_pretty(&serde_json::Value::Object(report))
        .expect("serialize report");
    fs::write(Path::new(RESULTS_DIR).join("report.json"), json).expect("write report.json");
    println!("\nwrote results/report.json  (total {:.1?})", t0.elapsed());
}

fn write_csv(name: &str, header: &str, rows: &[String]) {
    let mut out = String::from(header);
    out.push('\n');
    for r in rows {
        out.push_str(r);
        out.push('\n');
    }
    fs::write(Path::new(RESULTS_DIR).join(name), out).expect("write csv");
    println!("  -> results/{name}");
}

// ---------------------------------------------------------------- Table 1

fn table1(videos: &[(MotPreset, GeneratedVideo)]) -> serde_json::Value {
    println!("-- Table 1: characteristics of experimental videos --");
    println!(
        "{:<8} {:>11} {:>8} {:>8} {:>8}",
        "Video", "Resolution", "Frames", "Objects", "Camera"
    );
    let mut rows = Vec::new();
    for (_, v) in videos {
        let c = VideoCharacteristics::of(v);
        println!(
            "{:<8} {:>11} {:>8} {:>8} {:>8}",
            c.name, c.resolution, c.num_frames, c.num_objects, c.camera
        );
        rows.push(c);
    }
    println!();
    serde_json::to_value(rows).expect("serialize")
}

// ---------------------------------------------------------------- Table 2

#[derive(Serialize)]
struct Table2Row {
    video: String,
    frames: usize,
    objects: usize,
    key_frames: usize,
    remaining: usize,
}

fn table2(
    videos: &[(MotPreset, GeneratedVideo)],
    keyframes: &[KeyFrameResult],
) -> serde_json::Value {
    println!("-- Table 2: distinct objects after key frame extraction --");
    println!(
        "{:<8} {:>8} {:>8} {:>11} {:>10}",
        "Video", "Frames", "Objects", "KeyFrames", "Remaining"
    );
    let mut rows = Vec::new();
    for ((_, v), kf) in videos.iter().zip(keyframes) {
        let remaining = v
            .annotations()
            .distinct_objects_in_frames(&kf.key_frames())
            .len();
        let row = Table2Row {
            video: v.spec().name.clone(),
            frames: v.spec().num_frames,
            objects: v.annotations().num_objects(),
            key_frames: kf.num_key_frames(),
            remaining,
        };
        println!(
            "{:<8} {:>8} {:>8} {:>11} {:>10}",
            row.video, row.frames, row.objects, row.key_frames, row.remaining
        );
        rows.push(row);
    }
    println!();
    serde_json::to_value(rows).expect("serialize")
}

// ------------------------------------------------------- Figure 5 (a,c,e)

#[derive(Serialize)]
struct Fig5CountRow {
    video: String,
    f: f64,
    original: usize,
    after_opt: f64,
    after_rr: f64,
    epsilon: f64,
}

fn fig5_counts(
    videos: &[(MotPreset, GeneratedVideo)],
    keyframes: &[KeyFrameResult],
) -> serde_json::Value {
    println!("-- Figure 5(a,c,e): count of distinct objects (original / OPT / RR) --");
    let mut rows = Vec::new();
    for ((_, v), kf) in videos.iter().zip(keyframes) {
        let n = v.annotations().num_objects();
        println!("{} (n = {n}):  f |  OPT  |  RR   | eps", v.spec().name);
        let mut csv = Vec::new();
        for &f in &F_SWEEP {
            let mut opt_sum = 0.0;
            let mut rr_sum = 0.0;
            let mut eps_sum = 0.0;
            for trial in 0..TRIALS {
                let cfg = eval_config(f, trial);
                let mut rng = rand::rngs::StdRng::seed_from_u64(trial * 7919 + 13);
                let p1 = run_phase1(v.annotations(), kf, &cfg, &mut rng).expect("phase1");
                opt_sum += p1.original.distinct_present() as f64;
                rr_sum += p1.retained_rows().len() as f64;
                eps_sum += p1.epsilon;
            }
            let t = TRIALS as f64;
            let row = Fig5CountRow {
                video: v.spec().name.clone(),
                f,
                original: n,
                after_opt: opt_sum / t,
                after_rr: rr_sum / t,
                epsilon: eps_sum / t,
            };
            println!(
                "    {:>4.1} | {:>5.1} | {:>5.1} | {:>7.2}",
                f, row.after_opt, row.after_rr, row.epsilon
            );
            csv.push(format!(
                "{},{},{},{},{},{}",
                row.video, row.f, row.original, row.after_opt, row.after_rr, row.epsilon
            ));
            rows.push(row);
        }
        write_csv(
            &format!("fig5_counts_{}.csv", v.spec().name.to_lowercase()),
            "video,f,original,after_opt,after_rr,epsilon",
            &csv,
        );
    }
    println!();
    serde_json::to_value(rows).expect("serialize")
}

// ------------------------------------------------------- Figure 5 (b,d,f)

#[derive(Serialize)]
struct Fig5DevRow {
    video: String,
    f: f64,
    deviation_before: f64,
    deviation_after: f64,
    deviation_after_abs: f64,
}

fn fig5_deviation(
    videos: &[(MotPreset, GeneratedVideo)],
    keyframes: &[KeyFrameResult],
) -> serde_json::Value {
    println!("-- Figure 5(b,d,f): trajectory deviation before/after Phase II --");
    let mut rows = Vec::new();
    for ((_, v), kf) in videos.iter().zip(keyframes) {
        println!("{}:  f | before | after (signed, paper metric)", v.spec().name);
        let mut csv = Vec::new();
        for &f in &F_SWEEP {
            let mut before_sum = 0.0;
            let mut after_sum = 0.0;
            let mut after_abs_sum = 0.0;
            for trial in 0..TRIALS {
                let cfg = eval_config(f, trial);
                let mut rng = rand::rngs::StdRng::seed_from_u64(trial * 104_729 + 7);
                let p1 = run_phase1(v.annotations(), kf, &cfg, &mut rng).expect("phase1");
                let p2 = run_phase2(
                    &p1,
                    v.annotations(),
                    kf,
                    v.spec().raster_size(),
                    &cfg,
                    &mut rng,
                ).expect("phase2");
                before_sum += trajectory_deviation(v.annotations(), &p2.knots, &p2.mapping);
                after_sum += trajectory_deviation(v.annotations(), &p2.synthetic, &p2.mapping);
                after_abs_sum +=
                    trajectory_deviation_absolute(v.annotations(), &p2.synthetic, &p2.mapping);
            }
            let t = TRIALS as f64;
            let row = Fig5DevRow {
                video: v.spec().name.clone(),
                f,
                deviation_before: before_sum / t,
                deviation_after: after_sum / t,
                deviation_after_abs: after_abs_sum / t,
            };
            println!(
                "    {:>4.1} | {:>6.3} | {:>6.3} | (abs {:>5.3})",
                f, row.deviation_before, row.deviation_after, row.deviation_after_abs
            );
            csv.push(format!(
                "{},{},{},{},{}",
                row.video, row.f, row.deviation_before, row.deviation_after, row.deviation_after_abs
            ));
            rows.push(row);
        }
        write_csv(
            &format!("fig5_deviation_{}.csv", v.spec().name.to_lowercase()),
            "video,f,deviation_before,deviation_after,deviation_after_abs",
            &csv,
        );
    }
    println!();
    serde_json::to_value(rows).expect("serialize")
}

// ---------------------------------------------------------- Figures 6–8

fn fig678(
    videos: &[(MotPreset, GeneratedVideo)],
    keyframes: &[KeyFrameResult],
) -> serde_json::Value {
    println!("-- Figures 6-8: trajectories of two randomly selected objects --");
    let mut summary = Vec::new();
    for ((_, v), kf) in videos.iter().zip(keyframes) {
        for &f in &[0.1, 0.9] {
            let cfg = eval_config(f, 1);
            let mut rng = rand::rngs::StdRng::seed_from_u64(2021);
            let p1 = run_phase1(v.annotations(), kf, &cfg, &mut rng).expect("phase1");
            let p2 = run_phase2(
                &p1,
                v.annotations(),
                kf,
                v.spec().raster_size(),
                &cfg,
                &mut rng,
            ).expect("phase2");
            // First two retained original objects (deterministic stand-in
            // for the paper's "randomly selected" pair).
            let mut csv = Vec::new();
            for (orig, synth) in p2.mapping.iter().take(2) {
                let orig_series = trajectory_series(v.annotations(), *orig);
                let synth_series = trajectory_series(&p2.synthetic, *synth);
                for (frame, x, y) in &orig_series {
                    csv.push(format!("{},original,{frame},{x:.2},{y:.2}", orig.0));
                }
                for (frame, x, y) in &synth_series {
                    csv.push(format!("{},synthetic,{frame},{x:.2},{y:.2}", orig.0));
                }
                summary.push(serde_json::json!({
                    "video": v.spec().name,
                    "f": f,
                    "object": orig.0,
                    "original_frames": orig_series.len(),
                    "synthetic_frames": synth_series.len(),
                }));
            }
            write_csv(
                &format!(
                    "fig678_{}_f{}.csv",
                    v.spec().name.to_lowercase(),
                    (f * 10.0) as u32
                ),
                "object,kind,frame,x,y",
                &csv,
            );
        }
    }
    println!();
    serde_json::Value::Array(summary)
}

// -------------------------------------------------------- Figures 9–11

fn fig91011(
    videos: &[(MotPreset, GeneratedVideo)],
    keyframes: &[KeyFrameResult],
) -> serde_json::Value {
    println!("-- Figures 9-11: representative frames and synthetic frames --");
    let mut summary = Vec::new();
    for ((_, v), kf) in videos.iter().zip(keyframes) {
        // A populated key frame makes the most informative figure.
        let frame_idx = kf
            .key_frames()
            .into_iter()
            .max_by_key(|&k| v.annotations().count_in_frame(k))
            .unwrap_or(0);
        let name = v.spec().name.to_lowercase();
        let input = v.frame(frame_idx);
        fs::write(
            Path::new(RESULTS_DIR).join(format!("fig_{name}_input.ppm")),
            input.to_ppm(),
        )
        .expect("write input frame");

        // Background scene via the paper's inpainting method.
        let boxes: Vec<_> = v
            .annotations()
            .in_frame(frame_idx)
            .into_iter()
            .map(|(_, b)| b)
            .collect();
        let background = reconstruct_background(&input, &boxes, &InpaintConfig::default());
        fs::write(
            Path::new(RESULTS_DIR).join(format!("fig_{name}_background.ppm")),
            background.to_ppm(),
        )
        .expect("write background");

        for &f in &[0.1, 0.9] {
            let verro = Verro::new(eval_config(f, 3)).expect("config");
            let result = verro.sanitize(v, v.annotations()).expect("sanitize");
            let synth_frame = result.video.frame(frame_idx);
            fs::write(
                Path::new(RESULTS_DIR).join(format!(
                    "fig_{name}_synthetic_f{}.ppm",
                    (f * 10.0) as u32
                )),
                synth_frame.to_ppm(),
            )
            .expect("write synthetic frame");
        }
        println!(
            "  {}: frame {frame_idx} -> results/fig_{name}_{{input,background,synthetic_f1,synthetic_f9}}.ppm",
            v.spec().name
        );
        summary.push(serde_json::json!({
            "video": v.spec().name,
            "frame": frame_idx,
            "objects_in_frame": v.annotations().count_in_frame(frame_idx),
        }));
    }
    println!();
    serde_json::Value::Array(summary)
}

// ------------------------------------------------------------- Figure 12

fn fig12(
    videos: &[(MotPreset, GeneratedVideo)],
    keyframes: &[KeyFrameResult],
) -> serde_json::Value {
    println!("-- Figure 12: object counts in the optimized key frames --");
    let mut summary = Vec::new();
    for ((_, v), kf) in videos.iter().zip(keyframes) {
        let mut csv = Vec::new();
        let mut maes: BTreeMap<String, f64> = BTreeMap::new();
        for &f in &[0.1, 0.9] {
            let cfg = eval_config(f, 2);
            let mut rng = rand::rngs::StdRng::seed_from_u64(333);
            let p1 = run_phase1(v.annotations(), kf, &cfg, &mut rng).expect("phase1");
            let mut mae = 0.0;
            for (j, &g) in p1.picked_frames.iter().enumerate() {
                let original = p1.original.column_count(j);
                let randomized = p1.randomized.column_count(j);
                mae += (original as f64 - randomized as f64).abs();
                csv.push(format!("{f},{g},{original},{randomized}"));
            }
            mae /= p1.num_picked().max(1) as f64;
            maes.insert(format!("{f}"), mae);
            println!(
                "  {} f={f}: {} picked key frames, key-frame count MAE {mae:.2}",
                v.spec().name,
                p1.num_picked()
            );
        }
        write_csv(
            &format!("fig12_{}.csv", v.spec().name.to_lowercase()),
            "f,frame,original_count,randomized_count",
            &csv,
        );
        summary.push(serde_json::json!({
            "video": v.spec().name,
            "mae_by_f": maes,
        }));
    }
    println!();
    serde_json::Value::Array(summary)
}

// ------------------------------------------------------------- Figure 13

fn fig13(
    videos: &[(MotPreset, GeneratedVideo)],
    keyframes: &[KeyFrameResult],
) -> serde_json::Value {
    println!("-- Figure 13: object counts in the synthetic videos (per frame) --");
    let mut summary = Vec::new();
    for ((_, v), kf) in videos.iter().zip(keyframes) {
        let original = v.annotations().per_frame_counts();
        let mut csv = Vec::new();
        let mut maes: BTreeMap<String, f64> = BTreeMap::new();
        for &f in &[0.1, 0.9] {
            let cfg = eval_config(f, 4);
            let mut rng = rand::rngs::StdRng::seed_from_u64(444);
            let p1 = run_phase1(v.annotations(), kf, &cfg, &mut rng).expect("phase1");
            let p2 = run_phase2(
                &p1,
                v.annotations(),
                kf,
                v.spec().raster_size(),
                &cfg,
                &mut rng,
            ).expect("phase2");
            let synth = p2.synthetic.per_frame_counts();
            let mae: f64 = original
                .iter()
                .zip(&synth)
                .map(|(a, b)| (*a as f64 - *b as f64).abs())
                .sum::<f64>()
                / original.len() as f64;
            for (k, (o, s)) in original.iter().zip(&synth).enumerate() {
                csv.push(format!("{f},{k},{o},{s}"));
            }
            maes.insert(format!("{f}"), mae);
            println!("  {} f={f}: per-frame count MAE {mae:.2}", v.spec().name);
        }
        write_csv(
            &format!("fig13_{}.csv", v.spec().name.to_lowercase()),
            "f,frame,original_count,synthetic_count",
            &csv,
        );
        summary.push(serde_json::json!({
            "video": v.spec().name,
            "mae_by_f": maes,
        }));
    }
    println!();
    serde_json::Value::Array(summary)
}

// --------------------------------------------------------------- Table 3

#[derive(Serialize)]
struct Table3Row {
    video: String,
    phase1_secs: f64,
    phase2_secs: f64,
    render_encode_secs: f64,
    bandwidth_mb: f64,
    raw_mb: f64,
    epsilon: f64,
}

fn table3(videos: &[(MotPreset, GeneratedVideo)]) -> serde_json::Value {
    println!("-- Table 3: computational and communication overheads --");
    println!(
        "{:<8} {:>12} {:>12} {:>14} {:>14} {:>10}",
        "Video", "PhaseI(s)", "PhaseII(s)", "Render+Enc(s)", "Bandwidth(MB)", "Raw(MB)"
    );
    let mut rows = Vec::new();
    for (_, v) in videos {
        let verro = Verro::new(eval_config(0.1, 5)).expect("config");
        let result = verro.sanitize(v, v.annotations()).expect("sanitize");

        // Render every frame of V* and encode it — the shipped artifact.
        // Rendering fans out across frames (parallel `collect_from`).
        let t = Instant::now();
        let clip = InMemoryVideo::collect_from(&result.video);
        let encoded = encode_video(&clip);
        let render_encode_secs = t.elapsed().as_secs_f64();
        let bandwidth_mb = encoded.byte_len() as f64 / 1_048_576.0;
        let raw_mb = clip.raw_byte_len() as f64 / 1_048_576.0;

        let row = Table3Row {
            video: v.spec().name.clone(),
            phase1_secs: result.timings.phase1.as_secs_f64(),
            phase2_secs: result.timings.phase2.as_secs_f64(),
            render_encode_secs,
            bandwidth_mb,
            raw_mb,
            epsilon: result.privacy.epsilon_rr,
        };
        println!(
            "{:<8} {:>12.3} {:>12.3} {:>14.2} {:>14.2} {:>10.2}",
            row.video,
            row.phase1_secs,
            row.phase2_secs,
            row.render_encode_secs,
            row.bandwidth_mb,
            row.raw_mb
        );
        rows.push(row);
    }
    println!();
    serde_json::to_value(rows).expect("serialize")
}

// ---------------------------------------------------------- Inpaint bench

/// The inpaint perf trajectory: incremental engine vs. the naive reference
/// on the acceptance workload (128×96 frame, 30×40 hole). Writes
/// `results/BENCH_inpaint.json` so every report run records the current
/// speedup alongside a bit-identity check of the two engines' outputs.
fn bench_inpaint() -> serde_json::Value {
    use verro_video::color::Rgb;
    use verro_video::geometry::Size;
    use verro_video::image::ImageBuffer;
    use verro_vision::inpaint::{inpaint_exemplar, inpaint_exemplar_naive, InpaintConfig, Mask};

    println!("-- Inpaint bench: incremental engine vs naive reference --");
    let (w, h) = (128u32, 96u32);
    let (hx, hy, hw, hh) = (49u32, 28u32, 30u32, 40u32);
    let img = ImageBuffer::from_fn(Size::new(w, h), |x, y| {
        if ((x / 4) + (y / 6)) % 2 == 0 {
            Rgb::new(200, 180, 160)
        } else {
            Rgb::new(60, 80, 100)
        }
    });
    let mut mask = Mask::new(w, h);
    for y in hy..(hy + hh).min(h) {
        for x in hx..(hx + hw).min(w) {
            mask.set(x, y, true);
        }
    }
    let cfg = InpaintConfig::default();
    let reps = 5u32;

    let mut naive_out = img.clone();
    let t = Instant::now();
    for _ in 0..reps {
        naive_out = img.clone();
        inpaint_exemplar_naive(&mut naive_out, &mut mask.clone(), &cfg);
    }
    let naive_ms = t.elapsed().as_secs_f64() * 1e3 / reps as f64;

    let mut fast_out = img.clone();
    let t = Instant::now();
    for _ in 0..reps {
        fast_out = img.clone();
        inpaint_exemplar(&mut fast_out, &mut mask.clone(), &cfg);
    }
    let fast_ms = t.elapsed().as_secs_f64() * 1e3 / reps as f64;

    let identical = naive_out == fast_out;
    let speedup = naive_ms / fast_ms;
    println!(
        "  {w}x{h}, {hw}x{hh} hole: naive {naive_ms:.2} ms, incremental {fast_ms:.2} ms, \
         speedup {speedup:.2}x, bit-identical: {identical}"
    );
    let value = serde_json::json!({
        "workload": { "width": w, "height": h, "hole": [hx, hy, hw, hh] },
        "reps": reps,
        "naive_ms": naive_ms,
        "incremental_ms": fast_ms,
        "speedup": speedup,
        "bit_identical": identical,
    });
    fs::write(
        Path::new(RESULTS_DIR).join("BENCH_inpaint.json"),
        serde_json::to_string_pretty(&value).expect("serialize"),
    )
    .expect("write BENCH_inpaint.json");
    println!("  -> results/BENCH_inpaint.json\n");
    value
}

// --------------------------------------------------------- Pipeline bench

/// Times one closure `reps` times and returns (mean ms, last result).
fn time_ms<R>(reps: u32, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut out = None;
    let t = Instant::now();
    for _ in 0..reps {
        out = Some(f());
    }
    (
        t.elapsed().as_secs_f64() * 1e3 / reps as f64,
        out.expect("reps >= 1"),
    )
}

fn stage_json(label: &str, before_ms: f64, after_ms: f64, identical: bool) -> serde_json::Value {
    let speedup = before_ms / after_ms;
    println!(
        "  {label:<22} before {before_ms:>8.2} ms, after {after_ms:>8.2} ms, \
         speedup {speedup:.2}x, bit-identical: {identical}"
    );
    serde_json::json!({
        "before_ms": before_ms,
        "after_ms": after_ms,
        "speedup": speedup,
        "bit_identical": identical,
    })
}

/// The single-pass pipeline perf trajectory: fused per-frame stats, row-slice
/// inner loops, separable dilation, frame-parallel detection and rendering —
/// each measured against its retained seed-path reference, plus the
/// end-to-end preprocess+render comparison. Every stage asserts
/// bit-identical output before recording a speedup. Writes
/// `results/BENCH_pipeline.json`.
fn bench_pipeline() -> serde_json::Value {
    use verro_core::config::BackgroundMode;
    use verro_core::VerroConfig;
    use verro_video::generator::{apply_brightness, apply_brightness_reference, VideoSpec};
    use verro_video::image::ImageBuffer;
    use verro_video::{Camera, ObjectClass, SceneKind, Size};
    use verro_vision::bgmodel::{median_background, BackgroundConfig};
    use verro_vision::detect::{
        connected_components, detect, detect_all, dilate_mask, dilate_mask_naive,
        foreground_mask, foreground_mask_reference, mean_luma, Detection, DetectorConfig,
    };
    use verro_vision::histogram::{frame_stats, HsvBins, HsvHistogram};
    use verro_vision::keyframe::segment_histograms;
    use verro_vision::track::{SortTracker, TrackerConfig};

    println!("-- Pipeline bench: single-pass stages vs seed-path references --");
    let video = GeneratedVideo::generate(VideoSpec {
        name: "bench".into(),
        nominal_size: Size::new(256, 192),
        raster_scale: 1.0,
        num_frames: 48,
        num_objects: 6,
        scene: SceneKind::DaySquare,
        camera: Camera::Static,
        class: ObjectClass::Pedestrian,
        fps: 30.0,
        seed: 9,
        min_lifetime: 16,
        max_lifetime: 40,
        lifetime_mix: None,
        lighting_drift: 0.15,
        lighting_period: 10.0,
    });
    let frames: Vec<ImageBuffer> = (0..video.num_frames()).map(|k| video.frame(k)).collect();
    let clip = InMemoryVideo::new(frames.clone(), 30.0);
    let bins = HsvBins::default();
    let detector = DetectorConfig::default();
    let reps = 3u32;
    let mut stages: serde_json::Map<String, serde_json::Value> = serde_json::Map::new();

    // Fused stats pass vs reference histogram + separate luma traversal.
    let (before_ms, ref_stats) = time_ms(reps, || {
        frames
            .iter()
            .map(|f| (HsvHistogram::of_reference(f, bins), mean_luma(f)))
            .collect::<Vec<_>>()
    });
    let (after_ms, fused) = time_ms(reps, || {
        frames
            .iter()
            .map(|f| frame_stats(f, bins))
            .collect::<Vec<_>>()
    });
    let identical = ref_stats
        .iter()
        .zip(&fused)
        .all(|((h, l), s)| *h == s.histogram && l.to_bits() == s.mean_luma.to_bits());
    stages.insert(
        "stats_pass".into(),
        stage_json("stats pass", before_ms, after_ms, identical),
    );

    // Row-slice brightness LUT vs per-pixel get/set reference.
    let (before_ms, ref_bright) = time_ms(reps, || {
        let mut out: Vec<ImageBuffer> = frames.clone();
        for f in &mut out {
            apply_brightness_reference(f, 1.13);
        }
        out
    });
    let (after_ms, new_bright) = time_ms(reps, || {
        let mut out: Vec<ImageBuffer> = frames.clone();
        for f in &mut out {
            apply_brightness(f, 1.13);
        }
        out
    });
    stages.insert(
        "apply_brightness".into(),
        stage_json(
            "apply_brightness",
            before_ms,
            after_ms,
            ref_bright == new_bright,
        ),
    );

    // Row-slice foreground mask vs per-pixel get reference.
    let bg = median_background(
        &clip,
        0,
        clip.num_frames() - 1,
        &BackgroundConfig { max_samples: 15 },
    )
    .expect("median background");
    let (before_ms, ref_masks) = time_ms(reps, || {
        frames
            .iter()
            .map(|f| foreground_mask_reference(f, &bg, 40, 1.02).expect("sizes match"))
            .collect::<Vec<_>>()
    });
    let (after_ms, new_masks) = time_ms(reps, || {
        frames
            .iter()
            .map(|f| foreground_mask(f, &bg, 40, 1.02).expect("sizes match"))
            .collect::<Vec<_>>()
    });
    stages.insert(
        "foreground_mask".into(),
        stage_json(
            "foreground_mask",
            before_ms,
            after_ms,
            ref_masks == new_masks,
        ),
    );

    // Separable two-pass dilation vs the naive O(w*h*r^2) square kernel.
    let (w, h) = (bg.width(), bg.height());
    let mask = &new_masks[new_masks.len() / 2];
    let (before_ms, naive_dil) = time_ms(reps, || dilate_mask_naive(mask, w, h, 2));
    let (after_ms, sep_dil) = time_ms(reps, || dilate_mask(mask, w, h, 2));
    stages.insert(
        "dilate_r2".into(),
        stage_json("dilate r=2", before_ms, after_ms, naive_dil == sep_dil),
    );

    // Frame-parallel detection vs the serial per-frame loop.
    let lumas: Vec<f64> = frames.iter().map(mean_luma).collect();
    let (before_ms, serial_dets) = time_ms(reps, || {
        frames
            .iter()
            .map(|f| detect(f, &bg, &detector).expect("sizes match"))
            .collect::<Vec<_>>()
    });
    let (after_ms, par_dets) = time_ms(reps, || {
        detect_all(&clip, &bg, &detector, &lumas, &[]).expect("sizes match")
    });
    stages.insert(
        "detect".into(),
        stage_json("detect", before_ms, after_ms, serial_dets == par_dets),
    );

    // End-to-end preprocess: the "before" arm reconstructs the seed
    // pipeline from the retained reference kernels — per-pixel f64
    // histograms for key-frame clustering, and a serial detect loop that
    // re-decodes each frame and recomputes both lumas per call, with the
    // get(x, y) foreground mask and the naive windowed dilation. The
    // "after" arm is the shipping pipeline: one ingestion through the
    // shared cache, the fused stats pass, and frame-parallel detection.
    // Outputs are asserted identical, so this is the same work, rescheduled.
    let mut cfg = VerroConfig::default().with_flip(0.1).with_seed(7);
    cfg.background = BackgroundMode::TemporalMedian;
    cfg.keyframe.tau = 0.97;
    cfg.optimizer_noise_epsilon = None;
    let verro = Verro::new(cfg.clone()).expect("config");
    let seed_detect = |frame: &ImageBuffer, background: &ImageBuffer| -> Vec<Detection> {
        let gain = if detector.normalize_gain {
            mean_luma(background) / mean_luma(frame).max(1.0)
        } else {
            1.0
        };
        let mask = foreground_mask_reference(frame, background, detector.threshold, gain)
            .expect("sizes match");
        let mask = dilate_mask_naive(&mask, frame.width(), frame.height(), detector.dilate);
        let mut dets: Vec<Detection> =
            connected_components(&mask, frame.width(), frame.height())
                .into_iter()
                .filter(|d| d.area >= detector.min_area)
                .collect();
        dets.sort_by(|a, b| b.area.cmp(&a.area));
        dets
    };
    let (seed_preprocess_ms, (seed_ann, seed_kf)) = time_ms(1, || {
        let stride = cfg.keyframe.stride.max(1);
        let sampled: Vec<usize> = (0..video.num_frames()).step_by(stride).collect();
        let histograms: Vec<HsvHistogram> = sampled
            .iter()
            .map(|&k| HsvHistogram::of_reference(&video.frame(k), cfg.keyframe.bins))
            .collect();
        let kf = segment_histograms(&sampled, &histograms, &cfg.keyframe).expect("non-empty");
        let sbg = median_background(
            &video,
            0,
            video.num_frames() - 1,
            &BackgroundConfig {
                max_samples: cfg.background_samples,
            },
        )
        .expect("median background");
        let mut tracker = SortTracker::new(TrackerConfig::default(), ObjectClass::Pedestrian);
        for k in 0..video.num_frames() {
            let boxes: Vec<_> = seed_detect(&video.frame(k), &sbg)
                .into_iter()
                .map(|d| d.bbox)
                .collect();
            tracker.step(k, &boxes).expect("monotone frames");
        }
        (tracker.finish(video.num_frames()), kf)
    });
    let (_, (result, tracked)) = time_ms(1, || {
        verro
            .sanitize_with_tracking(
                &video,
                &detector,
                TrackerConfig::default(),
                ObjectClass::Pedestrian,
            )
            .expect("sanitize")
    });
    // Match the emulated scope: the before arm covers key-frame clustering
    // plus detection/tracking (with its median background); Phase II's
    // segment-background synthesis runs identically in both pipelines and
    // is excluded from both arms.
    let pipeline_preprocess_ms = (result.timings.preprocess
        - result.timings.preprocess_backgrounds)
        .as_secs_f64()
        * 1e3;
    let preprocess_identical = seed_ann == tracked && seed_kf == result.key_frames;

    // Frame-parallel V* rendering vs the serial frame loop.
    let (serial_render_ms, serial_frames) = time_ms(reps, || {
        (0..FrameSource::num_frames(&result.video))
            .map(|k| result.video.frame(k))
            .collect::<Vec<_>>()
    });
    let (par_render_ms, par_frames) = time_ms(reps, || result.video.render_all());
    stages.insert(
        "render".into(),
        stage_json(
            "render",
            serial_render_ms,
            par_render_ms,
            serial_frames == par_frames,
        ),
    );

    let before_e2e = seed_preprocess_ms + serial_render_ms;
    let after_e2e = pipeline_preprocess_ms + par_render_ms;
    let e2e = stage_json(
        "end-to-end pre+render",
        before_e2e,
        after_e2e,
        preprocess_identical,
    );

    let value = serde_json::json!({
        "workload": {
            "width": 256, "height": 192, "frames": 48, "objects": 6,
            "bins": { "h": bins.h, "s": bins.s, "v": bins.v },
        },
        "reps": reps,
        "stages": serde_json::Value::Object(stages),
        "end_to_end_preprocess_render": e2e,
        "provenance": "generated by this binary in the project's offline CI container; \
         absolute times are single-machine, relative speedups are the signal; \
         regenerate with: cargo run --release -p verro-bench --bin report -- --bench-pipeline",
    });
    fs::write(
        Path::new(RESULTS_DIR).join("BENCH_pipeline.json"),
        serde_json::to_string_pretty(&value).expect("serialize"),
    )
    .expect("write BENCH_pipeline.json");
    println!("  -> results/BENCH_pipeline.json\n");
    value
}

// ---------------------------------------------------------------- ε-audit

/// The empirical ε-audit at the default configuration and seed 0 — the same
/// run `verro audit --seed 0` performs — recorded beside the bench numbers
/// so every report captures whether the mechanisms still meet their stated
/// guarantee. Writes `results/audit.json` (byte-identical across reruns).
fn audit() -> serde_json::Value {
    use verro_core::VerroConfig;

    println!("-- Empirical ε-audit (default config, seed 0) --");
    let opts = verro_audit::AuditOptions::default();
    let report = verro_audit::run_audit(&VerroConfig::default(), 0, &opts).expect("audit");
    for check in &report.checks {
        println!("  check {:<26} {:?}", check.name, check.verdict);
    }
    println!(
        "  mc: {} pairs on {}/{} trials, eps_total {:.3} (+{:.3} slack), worst ucb {:.3} -> {:?}",
        report.mc.pairs.len(),
        report.mc.trials_used,
        report.mc.trials,
        report.mc.epsilon_total,
        report.mc.slack,
        report
            .mc
            .pairs
            .first()
            .map_or(0.0, |p| p.empirical_epsilon_ucb),
        report.mc.verdict
    );
    let json = report.to_json_pretty();
    fs::write(Path::new(RESULTS_DIR).join("audit.json"), format!("{json}\n"))
        .expect("write audit.json");
    println!("  -> results/audit.json (all_pass = {})\n", report.all_pass);
    serde_json::to_value(&report).expect("serialize")
}

// -------------------------------------------------------------- Ablations

/// Utility ablations for the design decisions in DESIGN.md §6: objective
/// form, overshoot policy, interpolation order, and count correction —
/// evaluated on the video where each matters most.
fn ablations(
    videos: &[(MotPreset, GeneratedVideo)],
    keyframes: &[KeyFrameResult],
) -> serde_json::Value {
    use verro_core::config::{OvershootPolicy, VerroConfig};
    use verro_core::metrics::count_mae;
    use verro_core::optimize::ObjectiveForm;
    use verro_vision::interp::InterpMethod;

    println!("-- Ablations (utility effect of DESIGN.md §6 decisions) --");
    let mut out = Vec::new();
    let mut run = |label: &str, video_idx: usize, f: f64, cfg: VerroConfig| {
        let (_, v) = &videos[video_idx];
        let kf = &keyframes[video_idx];
        let mut dev = 0.0;
        let mut mae = 0.0;
        let mut picked = 0.0;
        let mut retained = 0.0;
        for trial in 0..TRIALS {
            let mut rng = rand::rngs::StdRng::seed_from_u64(trial * 17 + 3);
            let p1 = run_phase1(v.annotations(), kf, &cfg, &mut rng).expect("phase1");
            let p2 = run_phase2(
                &p1,
                v.annotations(),
                kf,
                v.spec().raster_size(),
                &cfg,
                &mut rng,
            ).expect("phase2");
            dev += trajectory_deviation(v.annotations(), &p2.synthetic, &p2.mapping);
            mae += count_mae(v.annotations(), &p2.synthetic);
            picked += p1.num_picked() as f64;
            retained += p2.synthetic.num_objects() as f64;
        }
        let t = TRIALS as f64;
        println!(
            "  {:<34} [{} f={f}]: picked {:>5.1}, retained {:>6.1}, deviation {:.3}, count MAE {:>6.2}",
            label,
            v.spec().name,
            picked / t,
            retained / t,
            dev / t,
            mae / t
        );
        out.push(serde_json::json!({
            "ablation": label, "video": v.spec().name, "f": f,
            "picked": picked / t, "retained": retained / t,
            "deviation": dev / t, "count_mae": mae / t,
        }));
    };

    // Objective form on the sparse video (MOT06, index 2) at low f, where
    // the corrected objective picks ~23 frames and the literal one picks 2.
    let base = |f: f64| eval_config(f, 0);
    run("objective=FullDistortion (default)", 2, 0.1, base(0.1));
    let mut cfg = base(0.1);
    cfg.objective = ObjectiveForm::PaperEq9;
    run("objective=PaperEq9 (literal)", 2, 0.1, cfg);

    // Count correction on MOT06 at low f (spurious-presence inflation).
    run("count_correction=off (paper)", 2, 0.1, base(0.1));
    let mut cfg = base(0.1);
    cfg.count_correction = true;
    run("count_correction=on (extension)", 2, 0.1, cfg);

    // Overshoot policy on MOT03 (index 1).
    run("overshoot=Suppress (paper)", 1, 0.5, base(0.5));
    let mut cfg = base(0.5);
    cfg.overshoot = OvershootPolicy::Clamp;
    run("overshoot=Clamp", 1, 0.5, cfg);

    // Interpolation order on MOT03.
    for (label, m) in [
        ("interp=Lagrange w2 (default)", InterpMethod::Lagrange { window: 2 }),
        ("interp=Lagrange w4", InterpMethod::Lagrange { window: 4 }),
        ("interp=Nearest", InterpMethod::Nearest),
    ] {
        let mut cfg = base(0.3);
        cfg.interp = m;
        run(label, 1, 0.3, cfg);
    }
    println!();
    serde_json::Value::Array(out)
}
