//! Regenerates every table and figure of the paper's evaluation
//! (Section 6) on the three simulated MOT16 videos.
//!
//! ```sh
//! cargo run -p verro-bench --bin report --release -- --all
//! # or individual artifacts:
//! cargo run -p verro-bench --bin report --release -- --table2 --fig5-counts
//! # full-HD scaling harness (opt-in, not part of --all):
//! cargo run -p verro-bench --bin report --release -- --bench-scaling
//! # CI-sized variant, with forced kernel selection:
//! cargo run -p verro-bench --bin report --release -- \
//!     --bench-scaling --scaling-small --kernels scalar
//! # streaming engine harness (opt-in, not part of --all):
//! cargo run -p verro-bench --bin report --release -- --bench-stream
//! # DP query-layer utility-vs-ε curves (opt-in, not part of --all):
//! cargo run -p verro-bench --bin report --release -- --bench-query
//! # fingerprint pre-filter + stream dedup harness (opt-in, not part of --all):
//! cargo run -p verro-bench --bin report --release -- --bench-segment
//! # CI-sized variant:
//! cargo run -p verro-bench --bin report --release -- --bench-segment --segment-small
//! ```
//!
//! `--kernels {auto,scalar,simd}` pins the SIMD dispatch for the whole
//! run; `--scaling-frames N` / `--scaling-threads N` bound the scaling
//! harness's per-preset frame window and thread sweep.
//!
//! Output: human-readable tables on stdout plus CSV/PPM/JSON artifacts
//! under `results/`.

use rand::SeedableRng;
use serde::Serialize;
use serde_json::Value;
use std::collections::BTreeMap;
use std::fs;
use std::path::Path;
use std::time::Instant;
use verro_bench::jval::{obj, pretty};
use verro_bench::presets::{eval_config, eval_video, EVAL_SCALE, EVAL_SEED, F_SWEEP};
use verro_bench::provenance;
use verro_core::metrics::{trajectory_deviation, trajectory_deviation_absolute, trajectory_series};
use verro_core::phase1::run_phase1;
use verro_core::phase2::run_phase2;
use verro_core::synthesis::reconstruct_background;
use verro_core::{KernelMode, Verro};
use verro_video::codec::encode_video;
use verro_video::generator::{GeneratedVideo, MotPreset};
use verro_video::source::{FrameSource, InMemoryVideo};
use verro_video::stats::VideoCharacteristics;
use verro_vision::inpaint::InpaintConfig;
use verro_vision::keyframe::{extract_key_frames, KeyFrameResult};

const RESULTS_DIR: &str = "results";
/// Trials averaged for the stochastic series.
const TRIALS: u64 = 5;

/// Options of the `--bench-scaling` harness, parsed from `--scaling-*`.
struct ScalingOpts {
    /// Frames timed per preset (`--scaling-frames N`; default 48, or 24
    /// with `--scaling-small`).
    frames_cap: Option<usize>,
    /// Upper end of the thread sweep (`--scaling-threads N`; default: the
    /// host's available parallelism).
    max_threads: Option<usize>,
    /// CI variant: EVAL_SCALE rasters instead of the nominal full-HD ones.
    small: bool,
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut args: Vec<String> = Vec::new();
    let mut scaling = ScalingOpts {
        frames_cap: None,
        max_threads: None,
        small: false,
    };
    let mut segment_small = false;
    let mut iter = raw.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--kernels" => {
                let Some(mode) = iter.next().as_deref().and_then(KernelMode::parse) else {
                    eprintln!("--kernels must be auto, scalar, or simd");
                    std::process::exit(2);
                };
                mode.apply();
            }
            "--scaling-frames" => {
                scaling.frames_cap = iter.next().and_then(|v| v.parse().ok());
            }
            "--scaling-threads" => {
                scaling.max_threads = iter.next().and_then(|v| v.parse().ok());
            }
            "--scaling-small" => scaling.small = true,
            "--segment-small" => segment_small = true,
            _ => args.push(arg),
        }
    }
    fs::create_dir_all(RESULTS_DIR).expect("create results dir");
    let t0 = Instant::now();

    // `--bench-scaling` and `--bench-stream` are opt-in only: neither is
    // part of `--all` (full-HD rasters / double end-to-end runs dwarf every
    // other section), and running them alone skips the report's
    // video/key-frame generation entirely.
    let standalone = [
        "--bench-scaling",
        "--bench-stream",
        "--bench-query",
        "--bench-segment",
    ];
    let run_scaling = args.iter().any(|a| a == "--bench-scaling");
    let run_stream = args.iter().any(|a| a == "--bench-stream");
    let run_query = args.iter().any(|a| a == "--bench-query");
    let run_segment = args.iter().any(|a| a == "--bench-segment");
    let all = args.is_empty() || args.iter().any(|a| a == "--all");
    let run_sections = all || args.iter().any(|a| !standalone.contains(&a.as_str()));
    if run_sections {
        run_report(&args, all);
    }
    if run_stream {
        bench_stream();
    }
    if run_query {
        bench_query();
    }
    if run_segment {
        bench_segment(segment_small);
    }
    if run_scaling {
        bench_scaling(&scaling);
    }
    println!("\ntotal {:.1?}", t0.elapsed());
}

fn run_report(args: &[String], all: bool) {
    let want = |flag: &str| all || args.iter().any(|a| a == flag);

    println!("== VERRO evaluation report (simulated MOT16 presets) ==\n");

    // Generate the three videos once; key frames once per video.
    let videos: Vec<(MotPreset, GeneratedVideo)> = MotPreset::ALL
        .iter()
        .map(|&p| {
            let v = eval_video(p);
            println!(
                "generated {}: {} frames, {} objects, raster {}",
                v.spec().name,
                v.spec().num_frames,
                v.annotations().num_objects(),
                v.spec().raster_size()
            );
            (p, v)
        })
        .collect();

    let keyframes: Vec<KeyFrameResult> = videos
        .iter()
        .map(|(_, v)| {
            let t = Instant::now();
            let kf =
                extract_key_frames(v, &eval_config(0.1, 0).keyframe).expect("clip is non-empty");
            println!(
                "key frames for {}: {} segments in {:.1?}",
                v.spec().name,
                kf.num_key_frames(),
                t.elapsed()
            );
            kf
        })
        .collect();
    println!();

    let mut report = serde_json::Map::new();

    if want("--table1") {
        report.insert("table1".into(), table1(&videos));
    }
    if want("--table2") {
        report.insert("table2".into(), table2(&videos, &keyframes));
    }
    if want("--fig5-counts") {
        report.insert("fig5_counts".into(), fig5_counts(&videos, &keyframes));
    }
    if want("--fig5-deviation") {
        report.insert("fig5_deviation".into(), fig5_deviation(&videos, &keyframes));
    }
    if want("--fig678") {
        report.insert("fig678".into(), fig678(&videos, &keyframes));
    }
    if want("--fig91011") {
        report.insert("fig91011".into(), fig91011(&videos, &keyframes));
    }
    if want("--fig12") {
        report.insert("fig12".into(), fig12(&videos, &keyframes));
    }
    if want("--fig13") {
        report.insert("fig13".into(), fig13(&videos, &keyframes));
    }
    if want("--table3") {
        report.insert("table3".into(), table3(&videos));
    }
    if want("--ablate") {
        report.insert("ablations".into(), ablations(&videos, &keyframes));
    }
    if want("--bench-inpaint") {
        report.insert("bench_inpaint".into(), bench_inpaint());
    }
    if want("--bench-pipeline") {
        report.insert("bench_pipeline".into(), bench_pipeline());
    }
    if want("--audit") {
        report.insert("audit".into(), audit());
    }

    let json = pretty(&serde_json::Value::Object(report));
    fs::write(Path::new(RESULTS_DIR).join("report.json"), json).expect("write report.json");
    println!("\nwrote results/report.json");
}

fn write_csv(name: &str, header: &str, rows: &[String]) {
    let mut out = String::from(header);
    out.push('\n');
    for r in rows {
        out.push_str(r);
        out.push('\n');
    }
    fs::write(Path::new(RESULTS_DIR).join(name), out).expect("write csv");
    println!("  -> results/{name}");
}

// ---------------------------------------------------------------- Table 1

fn table1(videos: &[(MotPreset, GeneratedVideo)]) -> serde_json::Value {
    println!("-- Table 1: characteristics of experimental videos --");
    println!(
        "{:<8} {:>11} {:>8} {:>8} {:>8}",
        "Video", "Resolution", "Frames", "Objects", "Camera"
    );
    let mut rows = Vec::new();
    for (_, v) in videos {
        let c = VideoCharacteristics::of(v);
        println!(
            "{:<8} {:>11} {:>8} {:>8} {:>8}",
            c.name, c.resolution, c.num_frames, c.num_objects, c.camera
        );
        rows.push(c);
    }
    println!();
    serde_json::to_value(rows).expect("serialize")
}

// ---------------------------------------------------------------- Table 2

#[derive(Serialize)]
struct Table2Row {
    video: String,
    frames: usize,
    objects: usize,
    key_frames: usize,
    remaining: usize,
}

fn table2(
    videos: &[(MotPreset, GeneratedVideo)],
    keyframes: &[KeyFrameResult],
) -> serde_json::Value {
    println!("-- Table 2: distinct objects after key frame extraction --");
    println!(
        "{:<8} {:>8} {:>8} {:>11} {:>10}",
        "Video", "Frames", "Objects", "KeyFrames", "Remaining"
    );
    let mut rows = Vec::new();
    for ((_, v), kf) in videos.iter().zip(keyframes) {
        let remaining = v
            .annotations()
            .distinct_objects_in_frames(&kf.key_frames())
            .len();
        let row = Table2Row {
            video: v.spec().name.clone(),
            frames: v.spec().num_frames,
            objects: v.annotations().num_objects(),
            key_frames: kf.num_key_frames(),
            remaining,
        };
        println!(
            "{:<8} {:>8} {:>8} {:>11} {:>10}",
            row.video, row.frames, row.objects, row.key_frames, row.remaining
        );
        rows.push(row);
    }
    println!();
    serde_json::to_value(rows).expect("serialize")
}

// ------------------------------------------------------- Figure 5 (a,c,e)

#[derive(Serialize)]
struct Fig5CountRow {
    video: String,
    f: f64,
    original: usize,
    after_opt: f64,
    after_rr: f64,
    epsilon: f64,
}

fn fig5_counts(
    videos: &[(MotPreset, GeneratedVideo)],
    keyframes: &[KeyFrameResult],
) -> serde_json::Value {
    println!("-- Figure 5(a,c,e): count of distinct objects (original / OPT / RR) --");
    let mut rows = Vec::new();
    for ((_, v), kf) in videos.iter().zip(keyframes) {
        let n = v.annotations().num_objects();
        println!("{} (n = {n}):  f |  OPT  |  RR   | eps", v.spec().name);
        let mut csv = Vec::new();
        for &f in &F_SWEEP {
            let mut opt_sum = 0.0;
            let mut rr_sum = 0.0;
            let mut eps_sum = 0.0;
            for trial in 0..TRIALS {
                let cfg = eval_config(f, trial);
                let mut rng = rand::rngs::StdRng::seed_from_u64(trial * 7919 + 13);
                let p1 = run_phase1(v.annotations(), kf, &cfg, &mut rng).expect("phase1");
                opt_sum += p1.original.distinct_present() as f64;
                rr_sum += p1.retained_rows().len() as f64;
                eps_sum += p1.epsilon;
            }
            let t = TRIALS as f64;
            let row = Fig5CountRow {
                video: v.spec().name.clone(),
                f,
                original: n,
                after_opt: opt_sum / t,
                after_rr: rr_sum / t,
                epsilon: eps_sum / t,
            };
            println!(
                "    {:>4.1} | {:>5.1} | {:>5.1} | {:>7.2}",
                f, row.after_opt, row.after_rr, row.epsilon
            );
            csv.push(format!(
                "{},{},{},{},{},{}",
                row.video, row.f, row.original, row.after_opt, row.after_rr, row.epsilon
            ));
            rows.push(row);
        }
        write_csv(
            &format!("fig5_counts_{}.csv", v.spec().name.to_lowercase()),
            "video,f,original,after_opt,after_rr,epsilon",
            &csv,
        );
    }
    println!();
    serde_json::to_value(rows).expect("serialize")
}

// ------------------------------------------------------- Figure 5 (b,d,f)

#[derive(Serialize)]
struct Fig5DevRow {
    video: String,
    f: f64,
    deviation_before: f64,
    deviation_after: f64,
    deviation_after_abs: f64,
}

fn fig5_deviation(
    videos: &[(MotPreset, GeneratedVideo)],
    keyframes: &[KeyFrameResult],
) -> serde_json::Value {
    println!("-- Figure 5(b,d,f): trajectory deviation before/after Phase II --");
    let mut rows = Vec::new();
    for ((_, v), kf) in videos.iter().zip(keyframes) {
        println!(
            "{}:  f | before | after (signed, paper metric)",
            v.spec().name
        );
        let mut csv = Vec::new();
        for &f in &F_SWEEP {
            let mut before_sum = 0.0;
            let mut after_sum = 0.0;
            let mut after_abs_sum = 0.0;
            for trial in 0..TRIALS {
                let cfg = eval_config(f, trial);
                let mut rng = rand::rngs::StdRng::seed_from_u64(trial * 104_729 + 7);
                let p1 = run_phase1(v.annotations(), kf, &cfg, &mut rng).expect("phase1");
                let p2 = run_phase2(
                    &p1,
                    v.annotations(),
                    kf,
                    v.spec().raster_size(),
                    &cfg,
                    &mut rng,
                )
                .expect("phase2");
                before_sum += trajectory_deviation(v.annotations(), &p2.knots, &p2.mapping);
                after_sum += trajectory_deviation(v.annotations(), &p2.synthetic, &p2.mapping);
                after_abs_sum +=
                    trajectory_deviation_absolute(v.annotations(), &p2.synthetic, &p2.mapping);
            }
            let t = TRIALS as f64;
            let row = Fig5DevRow {
                video: v.spec().name.clone(),
                f,
                deviation_before: before_sum / t,
                deviation_after: after_sum / t,
                deviation_after_abs: after_abs_sum / t,
            };
            println!(
                "    {:>4.1} | {:>6.3} | {:>6.3} | (abs {:>5.3})",
                f, row.deviation_before, row.deviation_after, row.deviation_after_abs
            );
            csv.push(format!(
                "{},{},{},{},{}",
                row.video,
                row.f,
                row.deviation_before,
                row.deviation_after,
                row.deviation_after_abs
            ));
            rows.push(row);
        }
        write_csv(
            &format!("fig5_deviation_{}.csv", v.spec().name.to_lowercase()),
            "video,f,deviation_before,deviation_after,deviation_after_abs",
            &csv,
        );
    }
    println!();
    serde_json::to_value(rows).expect("serialize")
}

// ---------------------------------------------------------- Figures 6–8

fn fig678(
    videos: &[(MotPreset, GeneratedVideo)],
    keyframes: &[KeyFrameResult],
) -> serde_json::Value {
    println!("-- Figures 6-8: trajectories of two randomly selected objects --");
    let mut summary = Vec::new();
    for ((_, v), kf) in videos.iter().zip(keyframes) {
        for &f in &[0.1, 0.9] {
            let cfg = eval_config(f, 1);
            let mut rng = rand::rngs::StdRng::seed_from_u64(2021);
            let p1 = run_phase1(v.annotations(), kf, &cfg, &mut rng).expect("phase1");
            let p2 = run_phase2(
                &p1,
                v.annotations(),
                kf,
                v.spec().raster_size(),
                &cfg,
                &mut rng,
            )
            .expect("phase2");
            // First two retained original objects (deterministic stand-in
            // for the paper's "randomly selected" pair).
            let mut csv = Vec::new();
            for (orig, synth) in p2.mapping.iter().take(2) {
                let orig_series = trajectory_series(v.annotations(), *orig);
                let synth_series = trajectory_series(&p2.synthetic, *synth);
                for (frame, x, y) in &orig_series {
                    csv.push(format!("{},original,{frame},{x:.2},{y:.2}", orig.0));
                }
                for (frame, x, y) in &synth_series {
                    csv.push(format!("{},synthetic,{frame},{x:.2},{y:.2}", orig.0));
                }
                summary.push(serde_json::json!({
                    "video": v.spec().name,
                    "f": f,
                    "object": orig.0,
                    "original_frames": orig_series.len(),
                    "synthetic_frames": synth_series.len(),
                }));
            }
            write_csv(
                &format!(
                    "fig678_{}_f{}.csv",
                    v.spec().name.to_lowercase(),
                    (f * 10.0) as u32
                ),
                "object,kind,frame,x,y",
                &csv,
            );
        }
    }
    println!();
    serde_json::Value::Array(summary)
}

// -------------------------------------------------------- Figures 9–11

fn fig91011(
    videos: &[(MotPreset, GeneratedVideo)],
    keyframes: &[KeyFrameResult],
) -> serde_json::Value {
    println!("-- Figures 9-11: representative frames and synthetic frames --");
    let mut summary = Vec::new();
    for ((_, v), kf) in videos.iter().zip(keyframes) {
        // A populated key frame makes the most informative figure.
        let frame_idx = kf
            .key_frames()
            .into_iter()
            .max_by_key(|&k| v.annotations().count_in_frame(k))
            .unwrap_or(0);
        let name = v.spec().name.to_lowercase();
        let input = v.frame(frame_idx);
        fs::write(
            Path::new(RESULTS_DIR).join(format!("fig_{name}_input.ppm")),
            input.to_ppm(),
        )
        .expect("write input frame");

        // Background scene via the paper's inpainting method.
        let boxes: Vec<_> = v
            .annotations()
            .in_frame(frame_idx)
            .into_iter()
            .map(|(_, b)| b)
            .collect();
        let background = reconstruct_background(&input, &boxes, &InpaintConfig::default());
        fs::write(
            Path::new(RESULTS_DIR).join(format!("fig_{name}_background.ppm")),
            background.to_ppm(),
        )
        .expect("write background");

        for &f in &[0.1, 0.9] {
            let verro = Verro::new(eval_config(f, 3)).expect("config");
            let result = verro.sanitize(v, v.annotations()).expect("sanitize");
            let synth_frame = result.video.frame(frame_idx);
            fs::write(
                Path::new(RESULTS_DIR)
                    .join(format!("fig_{name}_synthetic_f{}.ppm", (f * 10.0) as u32)),
                synth_frame.to_ppm(),
            )
            .expect("write synthetic frame");
        }
        println!(
            "  {}: frame {frame_idx} -> results/fig_{name}_{{input,background,synthetic_f1,synthetic_f9}}.ppm",
            v.spec().name
        );
        summary.push(serde_json::json!({
            "video": v.spec().name,
            "frame": frame_idx,
            "objects_in_frame": v.annotations().count_in_frame(frame_idx),
        }));
    }
    println!();
    serde_json::Value::Array(summary)
}

// ------------------------------------------------------------- Figure 12

fn fig12(
    videos: &[(MotPreset, GeneratedVideo)],
    keyframes: &[KeyFrameResult],
) -> serde_json::Value {
    println!("-- Figure 12: object counts in the optimized key frames --");
    let mut summary = Vec::new();
    for ((_, v), kf) in videos.iter().zip(keyframes) {
        let mut csv = Vec::new();
        let mut maes: BTreeMap<String, f64> = BTreeMap::new();
        for &f in &[0.1, 0.9] {
            let cfg = eval_config(f, 2);
            let mut rng = rand::rngs::StdRng::seed_from_u64(333);
            let p1 = run_phase1(v.annotations(), kf, &cfg, &mut rng).expect("phase1");
            let mut mae = 0.0;
            for (j, &g) in p1.picked_frames.iter().enumerate() {
                let original = p1.original.column_count(j);
                let randomized = p1.randomized.column_count(j);
                mae += (original as f64 - randomized as f64).abs();
                csv.push(format!("{f},{g},{original},{randomized}"));
            }
            mae /= p1.num_picked().max(1) as f64;
            maes.insert(format!("{f}"), mae);
            println!(
                "  {} f={f}: {} picked key frames, key-frame count MAE {mae:.2}",
                v.spec().name,
                p1.num_picked()
            );
        }
        write_csv(
            &format!("fig12_{}.csv", v.spec().name.to_lowercase()),
            "f,frame,original_count,randomized_count",
            &csv,
        );
        summary.push(serde_json::json!({
            "video": v.spec().name,
            "mae_by_f": maes,
        }));
    }
    println!();
    serde_json::Value::Array(summary)
}

// ------------------------------------------------------------- Figure 13

fn fig13(
    videos: &[(MotPreset, GeneratedVideo)],
    keyframes: &[KeyFrameResult],
) -> serde_json::Value {
    println!("-- Figure 13: object counts in the synthetic videos (per frame) --");
    let mut summary = Vec::new();
    for ((_, v), kf) in videos.iter().zip(keyframes) {
        let original = v.annotations().per_frame_counts();
        let mut csv = Vec::new();
        let mut maes: BTreeMap<String, f64> = BTreeMap::new();
        for &f in &[0.1, 0.9] {
            let cfg = eval_config(f, 4);
            let mut rng = rand::rngs::StdRng::seed_from_u64(444);
            let p1 = run_phase1(v.annotations(), kf, &cfg, &mut rng).expect("phase1");
            let p2 = run_phase2(
                &p1,
                v.annotations(),
                kf,
                v.spec().raster_size(),
                &cfg,
                &mut rng,
            )
            .expect("phase2");
            let synth = p2.synthetic.per_frame_counts();
            let mae: f64 = original
                .iter()
                .zip(&synth)
                .map(|(a, b)| (*a as f64 - *b as f64).abs())
                .sum::<f64>()
                / original.len() as f64;
            for (k, (o, s)) in original.iter().zip(&synth).enumerate() {
                csv.push(format!("{f},{k},{o},{s}"));
            }
            maes.insert(format!("{f}"), mae);
            println!("  {} f={f}: per-frame count MAE {mae:.2}", v.spec().name);
        }
        write_csv(
            &format!("fig13_{}.csv", v.spec().name.to_lowercase()),
            "f,frame,original_count,synthetic_count",
            &csv,
        );
        summary.push(serde_json::json!({
            "video": v.spec().name,
            "mae_by_f": maes,
        }));
    }
    println!();
    serde_json::Value::Array(summary)
}

// --------------------------------------------------------------- Table 3

#[derive(Serialize)]
struct Table3Row {
    video: String,
    phase1_secs: f64,
    phase2_secs: f64,
    render_encode_secs: f64,
    bandwidth_mb: f64,
    raw_mb: f64,
    epsilon: f64,
}

fn table3(videos: &[(MotPreset, GeneratedVideo)]) -> serde_json::Value {
    println!("-- Table 3: computational and communication overheads --");
    println!(
        "{:<8} {:>12} {:>12} {:>14} {:>14} {:>10}",
        "Video", "PhaseI(s)", "PhaseII(s)", "Render+Enc(s)", "Bandwidth(MB)", "Raw(MB)"
    );
    let mut rows = Vec::new();
    for (_, v) in videos {
        let verro = Verro::new(eval_config(0.1, 5)).expect("config");
        let result = verro.sanitize(v, v.annotations()).expect("sanitize");

        // Render every frame of V* and encode it — the shipped artifact.
        // Rendering fans out across frames (parallel `collect_from`).
        let t = Instant::now();
        let clip = InMemoryVideo::collect_from(&result.video);
        let encoded = encode_video(&clip);
        let render_encode_secs = t.elapsed().as_secs_f64();
        let bandwidth_mb = encoded.byte_len() as f64 / 1_048_576.0;
        let raw_mb = clip.raw_byte_len() as f64 / 1_048_576.0;

        let row = Table3Row {
            video: v.spec().name.clone(),
            phase1_secs: result.timings.phase1.as_secs_f64(),
            phase2_secs: result.timings.phase2.as_secs_f64(),
            render_encode_secs,
            bandwidth_mb,
            raw_mb,
            epsilon: result.privacy.epsilon_rr,
        };
        println!(
            "{:<8} {:>12.3} {:>12.3} {:>14.2} {:>14.2} {:>10.2}",
            row.video,
            row.phase1_secs,
            row.phase2_secs,
            row.render_encode_secs,
            row.bandwidth_mb,
            row.raw_mb
        );
        rows.push(row);
    }
    println!();
    serde_json::to_value(rows).expect("serialize")
}

// ---------------------------------------------------------- Inpaint bench

/// The inpaint perf trajectory: incremental engine vs. the naive reference
/// on the acceptance workload (128×96 frame, 30×40 hole). Writes
/// `results/BENCH_inpaint.json` so every report run records the current
/// speedup alongside a bit-identity check of the two engines' outputs.
fn bench_inpaint() -> serde_json::Value {
    use verro_video::color::Rgb;
    use verro_video::geometry::Size;
    use verro_video::image::ImageBuffer;
    use verro_vision::inpaint::{inpaint_exemplar, inpaint_exemplar_naive, InpaintConfig, Mask};

    println!("-- Inpaint bench: incremental engine vs naive reference --");
    let (w, h) = (128u32, 96u32);
    let (hx, hy, hw, hh) = (49u32, 28u32, 30u32, 40u32);
    let img = ImageBuffer::from_fn(Size::new(w, h), |x, y| {
        if ((x / 4) + (y / 6)) % 2 == 0 {
            Rgb::new(200, 180, 160)
        } else {
            Rgb::new(60, 80, 100)
        }
    });
    let mut mask = Mask::new(w, h);
    for y in hy..(hy + hh).min(h) {
        for x in hx..(hx + hw).min(w) {
            mask.set(x, y, true);
        }
    }
    let cfg = InpaintConfig::default();
    let reps = 5u32;

    let mut naive_out = img.clone();
    let t = Instant::now();
    for _ in 0..reps {
        naive_out = img.clone();
        inpaint_exemplar_naive(&mut naive_out, &mut mask.clone(), &cfg);
    }
    let naive_ms = t.elapsed().as_secs_f64() * 1e3 / reps as f64;

    let mut fast_out = img.clone();
    let t = Instant::now();
    for _ in 0..reps {
        fast_out = img.clone();
        inpaint_exemplar(&mut fast_out, &mut mask.clone(), &cfg);
    }
    let fast_ms = t.elapsed().as_secs_f64() * 1e3 / reps as f64;

    let identical = naive_out == fast_out;
    let speedup = naive_ms / fast_ms;
    println!(
        "  {w}x{h}, {hw}x{hh} hole: naive {naive_ms:.2} ms, incremental {fast_ms:.2} ms, \
         speedup {speedup:.2}x, bit-identical: {identical}"
    );
    let value = obj(vec![
        (
            "workload",
            obj(vec![
                ("width", Value::from(w)),
                ("height", Value::from(h)),
                ("hole", Value::from(vec![hx, hy, hw, hh])),
            ]),
        ),
        ("reps", Value::from(reps)),
        ("naive_ms", Value::from(naive_ms)),
        ("incremental_ms", Value::from(fast_ms)),
        ("speedup", Value::from(speedup)),
        ("bit_identical", Value::from(identical)),
        (
            "provenance",
            provenance::capture(
                "cargo run --release -p verro-bench --bin report -- --bench-inpaint",
            ),
        ),
    ]);
    fs::write(
        Path::new(RESULTS_DIR).join("BENCH_inpaint.json"),
        pretty(&value),
    )
    .expect("write BENCH_inpaint.json");
    println!("  -> results/BENCH_inpaint.json\n");
    value
}

// --------------------------------------------------------- Pipeline bench

/// Times one closure `reps` times and returns (mean ms, last result).
fn time_ms<R>(reps: u32, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut out = None;
    let t = Instant::now();
    for _ in 0..reps {
        out = Some(f());
    }
    (
        t.elapsed().as_secs_f64() * 1e3 / reps as f64,
        out.expect("reps >= 1"),
    )
}

/// Times two closures A/B-interleaved and returns (best ms of `f`, best
/// ms of `g`, one result of each for identity checks).
///
/// Two disciplines matter for arms whose outputs are multi-megabyte:
///
/// * Nothing is retained across timed calls. Holding arm A's output alive
///   while timing arm B pushes B's allocations past glibc's mmap
///   threshold, and B then pays mmap/page-fault/munmap on every call — an
///   A/A experiment with two identical closures measured a stable "3.5×
///   regression" of the second slot under the retain-both pattern (the
///   source of the 0.73× render artifact in earlier BENCH_pipeline
///   records). Each timed call is dropped immediately; the identity-check
///   results are produced by separate untimed calls at the end.
/// * Reps alternate lead order (f,g then g,f) and each arm reports its
///   minimum, so one-sided throttling or cache pollution cannot bias a
///   fixed slot.
fn time_ms_interleaved<R>(
    reps: u32,
    mut f: impl FnMut() -> R,
    mut g: impl FnMut() -> R,
) -> (f64, f64, R, R) {
    let mut arms: [&mut dyn FnMut() -> R; 2] = [&mut f, &mut g];
    // Untimed warm-up: touches code and allocator once per arm.
    for arm in arms.iter_mut() {
        std::hint::black_box(arm());
    }
    let mut best = [f64::INFINITY; 2];
    for rep in 0..(reps * 2) {
        let lead = (rep % 2) as usize;
        for slot in 0..2 {
            let i = (lead + slot) % 2;
            let t = Instant::now();
            std::hint::black_box(arms[i]());
            best[i] = best[i].min(t.elapsed().as_secs_f64());
        }
    }
    let a = arms[0]();
    let b = arms[1]();
    (best[0] * 1e3, best[1] * 1e3, a, b)
}

fn stage_json(label: &str, before_ms: f64, after_ms: f64, identical: bool) -> serde_json::Value {
    let speedup = before_ms / after_ms;
    println!(
        "  {label:<22} before {before_ms:>8.2} ms, after {after_ms:>8.2} ms, \
         speedup {speedup:.2}x, bit-identical: {identical}"
    );
    obj(vec![
        ("before_ms", Value::from(before_ms)),
        ("after_ms", Value::from(after_ms)),
        ("speedup", Value::from(speedup)),
        ("bit_identical", Value::from(identical)),
    ])
}

/// The single-pass pipeline perf trajectory: fused per-frame stats, row-slice
/// inner loops, separable dilation, frame-parallel detection and rendering —
/// each measured against its retained seed-path reference, plus the
/// end-to-end preprocess+render comparison. Every stage asserts
/// bit-identical output before recording a speedup. Writes
/// `results/BENCH_pipeline.json`.
fn bench_pipeline() -> serde_json::Value {
    use verro_core::config::BackgroundMode;
    use verro_core::VerroConfig;
    use verro_video::generator::{apply_brightness, apply_brightness_reference, VideoSpec};
    use verro_video::image::ImageBuffer;
    use verro_video::{Camera, ObjectClass, SceneKind, Size};
    use verro_vision::bgmodel::{median_background, BackgroundConfig};
    use verro_vision::detect::{
        connected_components, detect, detect_all, dilate_mask, dilate_mask_naive, foreground_mask,
        foreground_mask_reference, mean_luma, Detection, DetectorConfig,
    };
    use verro_vision::histogram::{frame_stats, HsvBins, HsvHistogram};
    use verro_vision::keyframe::segment_histograms;
    use verro_vision::track::{SortTracker, TrackerConfig};

    println!("-- Pipeline bench: single-pass stages vs seed-path references --");
    let video = GeneratedVideo::generate(VideoSpec {
        name: "bench".into(),
        nominal_size: Size::new(256, 192),
        raster_scale: 1.0,
        num_frames: 48,
        num_objects: 6,
        scene: SceneKind::DaySquare,
        camera: Camera::Static,
        class: ObjectClass::Pedestrian,
        fps: 30.0,
        seed: 9,
        min_lifetime: 16,
        max_lifetime: 40,
        lifetime_mix: None,
        lighting_drift: 0.15,
        lighting_period: 10.0,
    });
    let frames: Vec<ImageBuffer> = (0..video.num_frames()).map(|k| video.frame(k)).collect();
    let clip = InMemoryVideo::new(frames.clone(), 30.0);
    let bins = HsvBins::default();
    let detector = DetectorConfig::default();
    let reps = 3u32;
    let mut stages: serde_json::Map<String, serde_json::Value> = serde_json::Map::new();

    // Fused stats pass vs reference histogram + separate luma traversal.
    let (before_ms, ref_stats) = time_ms(reps, || {
        frames
            .iter()
            .map(|f| (HsvHistogram::of_reference(f, bins), mean_luma(f)))
            .collect::<Vec<_>>()
    });
    let (after_ms, fused) = time_ms(reps, || {
        frames
            .iter()
            .map(|f| frame_stats(f, bins))
            .collect::<Vec<_>>()
    });
    let identical = ref_stats
        .iter()
        .zip(&fused)
        .all(|((h, l), s)| *h == s.histogram && l.to_bits() == s.mean_luma.to_bits());
    stages.insert(
        "stats_pass".into(),
        stage_json("stats pass", before_ms, after_ms, identical),
    );

    // Row-slice brightness LUT vs per-pixel get/set reference.
    let (before_ms, ref_bright) = time_ms(reps, || {
        let mut out: Vec<ImageBuffer> = frames.clone();
        for f in &mut out {
            apply_brightness_reference(f, 1.13);
        }
        out
    });
    let (after_ms, new_bright) = time_ms(reps, || {
        let mut out: Vec<ImageBuffer> = frames.clone();
        for f in &mut out {
            apply_brightness(f, 1.13);
        }
        out
    });
    stages.insert(
        "apply_brightness".into(),
        stage_json(
            "apply_brightness",
            before_ms,
            after_ms,
            ref_bright == new_bright,
        ),
    );

    // Row-slice foreground mask vs per-pixel get reference.
    let bg = median_background(
        &clip,
        0,
        clip.num_frames() - 1,
        &BackgroundConfig { max_samples: 15 },
    )
    .expect("median background");
    let (before_ms, ref_masks) = time_ms(reps, || {
        frames
            .iter()
            .map(|f| foreground_mask_reference(f, &bg, 40, 1.02).expect("sizes match"))
            .collect::<Vec<_>>()
    });
    let (after_ms, new_masks) = time_ms(reps, || {
        frames
            .iter()
            .map(|f| foreground_mask(f, &bg, 40, 1.02).expect("sizes match"))
            .collect::<Vec<_>>()
    });
    stages.insert(
        "foreground_mask".into(),
        stage_json(
            "foreground_mask",
            before_ms,
            after_ms,
            ref_masks == new_masks,
        ),
    );

    // Separable two-pass dilation vs the naive O(w*h*r^2) square kernel.
    let (w, h) = (bg.width(), bg.height());
    let mask = &new_masks[new_masks.len() / 2];
    let (before_ms, naive_dil) = time_ms(reps, || dilate_mask_naive(mask, w, h, 2));
    let (after_ms, sep_dil) = time_ms(reps, || dilate_mask(mask, w, h, 2));
    stages.insert(
        "dilate_r2".into(),
        stage_json("dilate r=2", before_ms, after_ms, naive_dil == sep_dil),
    );

    // Frame-parallel detection vs the serial per-frame loop.
    let lumas: Vec<f64> = frames.iter().map(mean_luma).collect();
    let (before_ms, serial_dets) = time_ms(reps, || {
        frames
            .iter()
            .map(|f| detect(f, &bg, &detector).expect("sizes match"))
            .collect::<Vec<_>>()
    });
    let (after_ms, par_dets) = time_ms(reps, || {
        detect_all(&clip, &bg, &detector, &lumas, &[]).expect("sizes match")
    });
    stages.insert(
        "detect".into(),
        stage_json("detect", before_ms, after_ms, serial_dets == par_dets),
    );

    // End-to-end preprocess: the "before" arm reconstructs the seed
    // pipeline from the retained reference kernels — per-pixel f64
    // histograms for key-frame clustering, and a serial detect loop that
    // re-decodes each frame and recomputes both lumas per call, with the
    // get(x, y) foreground mask and the naive windowed dilation. The
    // "after" arm is the shipping pipeline: one ingestion through the
    // shared cache, the fused stats pass, and frame-parallel detection.
    // Outputs are asserted identical, so this is the same work, rescheduled.
    let mut cfg = VerroConfig::default().with_flip(0.1).with_seed(7);
    cfg.background = BackgroundMode::TemporalMedian;
    cfg.keyframe.tau = 0.97;
    cfg.optimizer_noise_epsilon = None;
    let verro = Verro::new(cfg.clone()).expect("config");
    let seed_detect = |frame: &ImageBuffer, background: &ImageBuffer| -> Vec<Detection> {
        let gain = if detector.normalize_gain {
            mean_luma(background) / mean_luma(frame).max(1.0)
        } else {
            1.0
        };
        let mask = foreground_mask_reference(frame, background, detector.threshold, gain)
            .expect("sizes match");
        let mask = dilate_mask_naive(&mask, frame.width(), frame.height(), detector.dilate);
        let mut dets: Vec<Detection> = connected_components(&mask, frame.width(), frame.height())
            .into_iter()
            .filter(|d| d.area >= detector.min_area)
            .collect();
        dets.sort_by(|a, b| b.area.cmp(&a.area));
        dets
    };
    let (seed_preprocess_ms, (seed_ann, seed_kf)) = time_ms(1, || {
        let stride = cfg.keyframe.stride.max(1);
        let sampled: Vec<usize> = (0..video.num_frames()).step_by(stride).collect();
        let histograms: Vec<HsvHistogram> = sampled
            .iter()
            .map(|&k| HsvHistogram::of_reference(&video.frame(k), cfg.keyframe.bins))
            .collect();
        let kf = segment_histograms(&sampled, &histograms, &cfg.keyframe).expect("non-empty");
        let sbg = median_background(
            &video,
            0,
            video.num_frames() - 1,
            &BackgroundConfig {
                max_samples: cfg.background_samples,
            },
        )
        .expect("median background");
        let mut tracker = SortTracker::new(TrackerConfig::default(), ObjectClass::Pedestrian);
        for k in 0..video.num_frames() {
            let boxes: Vec<_> = seed_detect(&video.frame(k), &sbg)
                .into_iter()
                .map(|d| d.bbox)
                .collect();
            tracker.step(k, &boxes).expect("monotone frames");
        }
        (tracker.finish(video.num_frames()), kf)
    });
    let (_, (result, tracked)) = time_ms(1, || {
        verro
            .sanitize_with_tracking(
                &video,
                &detector,
                TrackerConfig::default(),
                ObjectClass::Pedestrian,
            )
            .expect("sanitize")
    });
    // Match the emulated scope: the before arm covers key-frame clustering
    // plus detection/tracking (with its median background); Phase II's
    // segment-background synthesis runs identically in both pipelines and
    // is excluded from both arms.
    let pipeline_preprocess_ms =
        (result.timings.preprocess - result.timings.preprocess_backgrounds).as_secs_f64() * 1e3;
    let preprocess_identical = seed_ann == tracked && seed_kf == result.key_frames;

    // Dispatched V* rendering (serial below the fan-out crossover, frame-
    // parallel above it) vs the always-serial frame loop. Interleaved
    // because the two arms run identical work on a 1-thread pool, where a
    // sequential A-then-B measurement consistently penalizes B.
    let (serial_render_ms, par_render_ms, serial_frames, par_frames) = time_ms_interleaved(
        // Sub-millisecond arms: extra alternating reps cost nothing and
        // tighten the min toward the true parity point.
        reps * 4,
        || {
            (0..FrameSource::num_frames(&result.video))
                .map(|k| result.video.frame(k))
                .collect::<Vec<_>>()
        },
        || result.video.render_all(),
    );
    stages.insert(
        "render".into(),
        stage_json(
            "render",
            serial_render_ms,
            par_render_ms,
            serial_frames == par_frames,
        ),
    );

    let before_e2e = seed_preprocess_ms + serial_render_ms;
    let after_e2e = pipeline_preprocess_ms + par_render_ms;
    let e2e = stage_json(
        "end-to-end pre+render",
        before_e2e,
        after_e2e,
        preprocess_identical,
    );

    let value = obj(vec![
        (
            "workload",
            obj(vec![
                ("width", Value::from(256_u32)),
                ("height", Value::from(192_u32)),
                ("frames", Value::from(48_u32)),
                ("objects", Value::from(6_u32)),
                (
                    "bins",
                    obj(vec![
                        ("h", Value::from(bins.h)),
                        ("s", Value::from(bins.s)),
                        ("v", Value::from(bins.v)),
                    ]),
                ),
            ]),
        ),
        ("reps", Value::from(reps)),
        ("stages", Value::Object(stages)),
        ("end_to_end_preprocess_render", e2e),
        (
            "provenance",
            provenance::capture(
                "cargo run --release -p verro-bench --bin report -- --bench-pipeline",
            ),
        ),
    ]);
    fs::write(
        Path::new(RESULTS_DIR).join("BENCH_pipeline.json"),
        pretty(&value),
    )
    .expect("write BENCH_pipeline.json");
    println!("  -> results/BENCH_pipeline.json\n");
    value
}

// ---------------------------------------------------------- Scaling bench

/// FNV-1a over a byte slice — the cheap running fingerprint behind the
/// scalar-vs-SIMD bit-identity check (no output frame is kept in memory).
fn fnv1a(acc: u64, bytes: &[u8]) -> u64 {
    bytes.iter().fold(acc, |a, &b| {
        (a ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
    })
}

/// Order statistics over per-frame latencies (sorts its input).
fn latency_stats_ms(samples: &mut [f64]) -> Value {
    if samples.is_empty() {
        return obj(Vec::new());
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let pick = |q: f64| samples[((samples.len() - 1) as f64 * q).ceil() as usize];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    obj(vec![
        ("mean_ms", Value::from(mean)),
        ("p50_ms", Value::from(pick(0.50))),
        ("p99_ms", Value::from(pick(0.99))),
        ("max_ms", Value::from(samples[samples.len() - 1])),
    ])
}

/// One single-stream pass over the materialized window: per-stage wall
/// clock, per-frame totals, and a fingerprint of every output bit.
struct HotPathRun {
    stats_ms: f64,
    detect_ms: f64,
    render_ms: f64,
    totals_ms: Vec<f64>,
    fingerprint: u64,
}

/// Runs the sanitizer's per-frame hot path — frame stats → detection →
/// synthetic render — one frame at a time (no rayon fan-out), timing each
/// stage. Frame *decode* (`imv.frame(k)`, a copy out of the materialized
/// window) is excluded: it stands in for the camera/decoder feeding a real
/// deployment, not for sanitizer work. The fingerprint folds in the frame
/// statistics, every detection box, and every rendered byte, so two runs
/// with equal fingerprints produced bit-identical outputs.
fn run_hot_path(
    imv: &verro_video::source::InMemoryVideo,
    background: &verro_video::image::ImageBuffer,
    bg_luma: f64,
    sv: &verro_core::synthesis::SyntheticVideo,
    bins: verro_vision::histogram::HsvBins,
    det: &verro_vision::detect::DetectorConfig,
    n: usize,
) -> HotPathRun {
    use verro_vision::detect::{detect_precomputed, DetectScratch};
    use verro_vision::histogram::frame_stats;

    let mut scratch = DetectScratch::default();
    let mut run = HotPathRun {
        stats_ms: 0.0,
        detect_ms: 0.0,
        render_ms: 0.0,
        totals_ms: Vec::with_capacity(n),
        fingerprint: 0xcbf2_9ce4_8422_2325,
    };
    for k in 0..n {
        let frame = imv.frame(k);
        let t = Instant::now();
        let stats = frame_stats(&frame, bins);
        let d_stats = t.elapsed().as_secs_f64() * 1e3;
        let t = Instant::now();
        let dets = detect_precomputed(
            &frame,
            background,
            det,
            stats.mean_luma,
            bg_luma,
            &mut scratch,
        )
        .expect("frame and background rasters match");
        let d_detect = t.elapsed().as_secs_f64() * 1e3;
        let t = Instant::now();
        let rendered = sv.frame(k);
        let d_render = t.elapsed().as_secs_f64() * 1e3;

        run.stats_ms += d_stats;
        run.detect_ms += d_detect;
        run.render_ms += d_render;
        run.totals_ms.push(d_stats + d_detect + d_render);
        let mut fp = fnv1a(run.fingerprint, &stats.mean_luma.to_le_bytes());
        for plane in [
            &stats.histogram.hue,
            &stats.histogram.sat,
            &stats.histogram.val,
        ] {
            for v in plane.iter() {
                fp = fnv1a(fp, &v.to_le_bytes());
            }
        }
        for d in &dets {
            for c in [d.bbox.x, d.bbox.y, d.bbox.w, d.bbox.h] {
                fp = fnv1a(fp, &c.to_le_bytes());
            }
            fp = fnv1a(fp, &(d.area as u64).to_le_bytes());
        }
        run.fingerprint = fnv1a(fp, rendered.bytes());
    }
    run
}

/// Summarizes a [`HotPathRun`] for the JSON report.
fn hot_path_json(run: &HotPathRun, n: usize) -> Value {
    let mut totals = run.totals_ms.clone();
    let total_ms: f64 = run.totals_ms.iter().sum();
    obj(vec![
        ("stats_ms_per_frame", Value::from(run.stats_ms / n as f64)),
        ("detect_ms_per_frame", Value::from(run.detect_ms / n as f64)),
        ("render_ms_per_frame", Value::from(run.render_ms / n as f64)),
        ("total_ms", Value::from(total_ms)),
        ("latency", latency_stats_ms(&mut totals)),
        ("hot_path_fps", Value::from(n as f64 / (total_ms / 1e3))),
    ])
}

/// `--bench-scaling`: the full-HD scaling harness. Each MOT preset is
/// generated at its nominal raster (1920×1080 for MOT-01/-03;
/// `--scaling-small` substitutes the EVAL_SCALE CI rasters), the first N
/// frames are materialized in memory, and then:
///
/// 1. the single-stream hot path is timed frame by frame — once under
///    forced-scalar and once under forced-SIMD kernels, with a fingerprint
///    equality check proving the arms bit-identical — yielding per-stage
///    breakdowns and p50/p99/max per-frame latency;
/// 2. the batch (rayon fan-out) stages — `compute_frame_stats`,
///    `detect_all`, parallel render — are swept across thread-pool sizes
///    `1..=N`, recording frames/sec at each width.
///
/// Writes `results/BENCH_scaling.json` with full machine provenance.
fn bench_scaling(opts: &ScalingOpts) {
    use rayon::prelude::*;
    use verro_core::synthesis::{BackgroundScene, SyntheticVideo};
    use verro_video::image::ImageBuffer;
    use verro_vision::bgmodel::{median_background, BackgroundConfig};
    use verro_vision::detect::{detect_all, mean_luma, DetectorConfig};
    use verro_vision::histogram::{compute_frame_stats, HsvBins};

    println!("-- Scaling bench: per-frame hot path at preset resolution --");
    let hw = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1);
    let max_threads = opts.max_threads.unwrap_or(hw).max(1);
    let raster = if opts.small { EVAL_SCALE } else { 1.0 };
    let cap = opts
        .frames_cap
        .unwrap_or(if opts.small { 24 } else { 48 })
        .max(1);
    let prev_override = verro_vision::simd::kernel_override();

    let mut presets = Vec::new();
    for &preset in MotPreset::ALL.iter() {
        let video = GeneratedVideo::generate(preset.spec(raster, EVAL_SEED));
        let spec = video.spec();
        let n = cap.min(spec.num_frames);
        let size = spec.raster_size();
        println!(
            "  {}: raster {size}, timing {n} of {} frames",
            spec.name, spec.num_frames
        );
        // Materialize the timed window once; generation cost is not
        // sanitizer work and stays outside every measurement.
        let frames: Vec<ImageBuffer> = (0..n).map(|k| video.frame(k)).collect();
        let imv = InMemoryVideo::try_new(frames, spec.fps).expect("window is non-empty");

        let t = Instant::now();
        let background = median_background(&imv, 0, n - 1, &BackgroundConfig::default())
            .expect("valid frame range");
        let setup_ms = t.elapsed().as_secs_f64() * 1e3;
        let bg_luma = mean_luma(&background);
        let sv = SyntheticVideo::new(
            size,
            spec.fps,
            vec![BackgroundScene {
                start: 0,
                end: n - 1,
                image: background.clone(),
            }],
            video.annotations().clone(),
        );
        let det = DetectorConfig::default();
        let bins = HsvBins::default();

        // Kernel A/B on the single-stream path. The override is a process
        // global; restore the caller's selection afterwards. A short
        // untimed pass warms caches/branch predictors so the first-run
        // variant is not charged for them.
        let warmup = n.min(2);
        verro_vision::simd::set_kernel_override(Some(false));
        run_hot_path(&imv, &background, bg_luma, &sv, bins, &det, warmup);
        let scalar = run_hot_path(&imv, &background, bg_luma, &sv, bins, &det, n);
        verro_vision::simd::set_kernel_override(Some(true));
        run_hot_path(&imv, &background, bg_luma, &sv, bins, &det, warmup);
        let simd = run_hot_path(&imv, &background, bg_luma, &sv, bins, &det, n);
        verro_vision::simd::set_kernel_override(prev_override);
        let identical = scalar.fingerprint == simd.fingerprint;
        let scalar_total: f64 = scalar.totals_ms.iter().sum();
        let simd_total: f64 = simd.totals_ms.iter().sum();
        let speedup = scalar_total / simd_total;
        println!(
            "    per-frame: scalar {:.2} ms, simd {:.2} ms, speedup {speedup:.2}x, \
             bit-identical: {identical}",
            scalar_total / n as f64,
            simd_total / n as f64,
        );

        let mut threads_json = Vec::new();
        for t_count in 1..=max_threads {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(t_count)
                .build()
                .expect("build rayon pool");
            let (stats_ms, detect_ms, render_ms) = pool.install(|| {
                let t = Instant::now();
                let stats = compute_frame_stats(&imv, bins);
                let stats_ms = t.elapsed().as_secs_f64() * 1e3;
                let lumas: Vec<f64> = stats.iter().map(|s| s.mean_luma).collect();
                let t = Instant::now();
                let dets =
                    detect_all(&imv, &background, &det, &lumas, &[]).expect("lumas match frames");
                let detect_ms = t.elapsed().as_secs_f64() * 1e3;
                let indices: Vec<usize> = (0..n).collect();
                let t = Instant::now();
                let rendered: Vec<ImageBuffer> = indices.par_iter().map(|&k| sv.frame(k)).collect();
                let render_ms = t.elapsed().as_secs_f64() * 1e3;
                std::hint::black_box((dets, rendered));
                (stats_ms, detect_ms, render_ms)
            });
            let total_ms = stats_ms + detect_ms + render_ms;
            let fps = n as f64 / (total_ms / 1e3);
            println!(
                "    threads {t_count}: stats {stats_ms:.1} ms, detect {detect_ms:.1} ms, \
                 render {render_ms:.1} ms -> {fps:.2} fps"
            );
            threads_json.push(obj(vec![
                ("threads", Value::from(t_count)),
                ("stats_ms", Value::from(stats_ms)),
                ("detect_ms", Value::from(detect_ms)),
                ("render_ms", Value::from(render_ms)),
                ("total_ms", Value::from(total_ms)),
                ("fps", Value::from(fps)),
                ("real_time", Value::from(fps >= spec.fps)),
            ]));
        }

        presets.push(obj(vec![
            ("preset", Value::from(spec.name.as_str())),
            (
                "nominal",
                obj(vec![
                    ("width", Value::from(spec.nominal_size.width)),
                    ("height", Value::from(spec.nominal_size.height)),
                    ("frames", Value::from(spec.num_frames)),
                    ("fps", Value::from(spec.fps)),
                ]),
            ),
            (
                "measured",
                obj(vec![
                    ("width", Value::from(size.width)),
                    ("height", Value::from(size.height)),
                    ("frames", Value::from(n)),
                    ("raster_scale", Value::from(spec.raster_scale)),
                ]),
            ),
            ("setup_background_ms", Value::from(setup_ms)),
            (
                "per_frame",
                obj(vec![
                    ("scalar", hot_path_json(&scalar, n)),
                    ("simd", hot_path_json(&simd, n)),
                    ("bit_identical", Value::from(identical)),
                    ("simd_speedup", Value::from(speedup)),
                ]),
            ),
            ("threads", Value::Array(threads_json)),
        ]));
    }

    let value = obj(vec![
        (
            "provenance",
            provenance::capture(
                "cargo run --release -p verro-bench --bin report -- --bench-scaling",
            ),
        ),
        ("threads_swept", Value::from(max_threads)),
        ("frames_per_preset_cap", Value::from(cap)),
        ("small_presets", Value::from(opts.small)),
        ("presets", Value::Array(presets)),
    ]);
    fs::write(
        Path::new(RESULTS_DIR).join("BENCH_scaling.json"),
        pretty(&value),
    )
    .expect("write BENCH_scaling.json");
    println!("  -> results/BENCH_scaling.json\n");
}

// ------------------------------------------------------ segmentation bench

/// `--bench-segment`: the gradient-fingerprint fast path (DESIGN.md §15),
/// measured three ways:
///
/// 1. raw per-frame cost of a [`FrameFingerprint`] vs an HSV histogram at
///    the nominal raster, timed interleaved and reported min-of-reps;
/// 2. the segmentation stage end to end, pre-filter on vs off, on an
///    idle-heavy surveillance-shaped clip (a static camera holds each
///    scene for a stretch, so most consecutive sampled frames are
///    byte-identical — the ≥2× target case) and, honestly, on the three
///    MOT presets where every frame differs and the pre-filter can only
///    break even. Both arms are asserted to produce identical
///    [`KeyFrameResult`]s;
/// 3. cross-stream dedup on an N-copies demo: duplicate streams are
///    flagged by the [`DedupRegistry`] probe, skip sanitization entirely,
///    and charge no ε — the table records the hit rate and the saved work.
///
/// `--segment-small` is the CI-sized variant (EVAL_SCALE rasters, fewer
/// frames and reps). Writes `results/BENCH_segment.json` with full machine
/// provenance.
///
/// [`FrameFingerprint`]: verro_vision::fingerprint::FrameFingerprint
/// [`DedupRegistry`]: verro_core::supervise::DedupRegistry
fn bench_segment(small: bool) {
    use verro_core::supervise::{DedupConfig, DedupRegistry, DedupVerdict, StreamSignature};
    use verro_video::geometry::Size;
    use verro_video::image::ImageBuffer;
    use verro_vision::fingerprint::{FingerprintMode, FrameFingerprint};
    use verro_vision::histogram::{HsvBins, HsvHistogram};
    use verro_vision::keyframe::extract_key_frames_with_stats;

    /// A surveillance-shaped source: a small pool of distinct rasters
    /// replayed through a piecewise-constant schedule. Fetch cost (one
    /// frame clone) is identical in both A/B arms.
    struct ReplayVideo {
        pool: Vec<ImageBuffer>,
        schedule: Vec<usize>,
    }

    impl FrameSource for ReplayVideo {
        fn num_frames(&self) -> usize {
            self.schedule.len()
        }

        fn frame_size(&self) -> Size {
            self.pool[0].size()
        }

        fn frame(&self, k: usize) -> ImageBuffer {
            self.pool[self.schedule[k]].clone()
        }
    }

    println!("-- Segmentation bench: fingerprint pre-filter + stream dedup --");
    let raster = if small { EVAL_SCALE } else { 1.0 };
    let keyframe = eval_config(0.1, 0).keyframe; // stride 4, tau 0.94
    let mut cfg_on = keyframe;
    cfg_on.fingerprint = FingerprintMode::Auto;
    let mut cfg_off = keyframe;
    cfg_off.fingerprint = FingerprintMode::Off;

    // --- 1: raw per-frame cost, fingerprint vs HSV histogram. Interleaved
    // so scheduler noise cannot favor either arm; min-of-reps so the
    // steady-state cost is what gets recorded.
    let probe_video = GeneratedVideo::generate(MotPreset::ALL[0].spec(raster, EVAL_SEED));
    let frame0 = probe_video.frame(0);
    let size = frame0.size();
    let bins = HsvBins::default();
    let reps = if small { 5 } else { 20 };
    let mut fp_ms = f64::INFINITY;
    let mut hist_ms = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(FrameFingerprint::of(&frame0));
        fp_ms = fp_ms.min(t.elapsed().as_secs_f64() * 1e3);
        let t = Instant::now();
        std::hint::black_box(HsvHistogram::of(&frame0, bins));
        hist_ms = hist_ms.min(t.elapsed().as_secs_f64() * 1e3);
    }
    println!(
        "  per-frame at {size}: fingerprint {fp_ms:.3} ms, hsv histogram {hist_ms:.3} ms \
         ({:.1}x cheaper)",
        hist_ms / fp_ms
    );

    // --- 2a: segmentation stage A/B on the idle-heavy workload. Each
    // scene holds for 8 sampled frames, so 7 of every 8 histograms are
    // reusable; the arms must still agree bit for bit.
    let n_frames = if small { 192 } else { 384 };
    let pool_len = 8usize;
    let hold = keyframe.stride * 8;
    let pool: Vec<ImageBuffer> = (0..pool_len).map(|i| probe_video.frame(i * 7)).collect();
    let schedule: Vec<usize> = (0..n_frames).map(|k| (k / hold) % pool_len).collect();
    let replay = ReplayVideo { pool, schedule };

    let ab_reps = if small { 2 } else { 3 };
    let mut idle_on_ms = f64::INFINITY;
    let mut idle_off_ms = f64::INFINITY;
    let mut idle_stats = verro_vision::fingerprint::PrefilterStats::default();
    let mut idle_identical = true;
    for _ in 0..ab_reps {
        let t = Instant::now();
        let (r_off, _) = extract_key_frames_with_stats(&replay, &cfg_off).expect("non-empty clip");
        idle_off_ms = idle_off_ms.min(t.elapsed().as_secs_f64() * 1e3);
        let t = Instant::now();
        let (r_on, s) = extract_key_frames_with_stats(&replay, &cfg_on).expect("non-empty clip");
        idle_on_ms = idle_on_ms.min(t.elapsed().as_secs_f64() * 1e3);
        idle_identical &= r_on == r_off;
        idle_stats = s;
    }
    let idle_speedup = idle_off_ms / idle_on_ms;
    println!(
        "  idle-heavy {n_frames} frames at {size}: off {idle_off_ms:.1} ms, on {idle_on_ms:.1} \
         ms ({idle_speedup:.2}x), reused {}/{} sampled, identical: {idle_identical}",
        idle_stats.reused, idle_stats.sampled
    );

    // --- 2b: the honest numbers — MOT presets where every frame differs,
    // so the pre-filter pays its screen and reuses nothing.
    let mot_cap = if small { 48 } else { 96 };
    let mut mot_json = Vec::new();
    for &preset in MotPreset::ALL.iter() {
        let video = GeneratedVideo::generate(preset.spec(raster, EVAL_SEED));
        let n = mot_cap.min(video.num_frames());
        let frames: Vec<ImageBuffer> = (0..n).map(|k| video.frame(k)).collect();
        let imv = InMemoryVideo::try_new(frames, video.fps()).expect("window is non-empty");
        let mut on_ms = f64::INFINITY;
        let mut off_ms = f64::INFINITY;
        let mut stats = verro_vision::fingerprint::PrefilterStats::default();
        let mut identical = true;
        for _ in 0..ab_reps {
            let t = Instant::now();
            let (r_off, _) = extract_key_frames_with_stats(&imv, &cfg_off).expect("non-empty clip");
            off_ms = off_ms.min(t.elapsed().as_secs_f64() * 1e3);
            let t = Instant::now();
            let (r_on, s) = extract_key_frames_with_stats(&imv, &cfg_on).expect("non-empty clip");
            on_ms = on_ms.min(t.elapsed().as_secs_f64() * 1e3);
            identical &= r_on == r_off;
            stats = s;
        }
        println!(
            "  {}: off {off_ms:.1} ms, on {on_ms:.1} ms ({:.2}x), reused {}/{} sampled, \
             identical: {identical}",
            video.spec().name,
            off_ms / on_ms,
            stats.reused,
            stats.sampled
        );
        mot_json.push(obj(vec![
            ("preset", Value::from(video.spec().name.as_str())),
            ("frames", Value::from(n)),
            ("off_ms", Value::from(off_ms)),
            ("on_ms", Value::from(on_ms)),
            ("speedup", Value::from(off_ms / on_ms)),
            ("sampled", Value::from(stats.sampled)),
            ("computed", Value::from(stats.computed)),
            ("reused", Value::from(stats.reused)),
            ("bit_identical", Value::from(identical)),
        ]));
    }

    // --- 3: cross-stream dedup on an N-copies demo. Three cameras point
    // at the same scene (identical clips), one at a different one; the
    // registry sanitizes each canonical stream once and charges ε once.
    fn demo_clip(seed: u64) -> GeneratedVideo {
        use verro_video::generator::VideoSpec;
        use verro_video::{Camera, ObjectClass, SceneKind};
        GeneratedVideo::generate(VideoSpec {
            name: format!("dedup-demo-{seed}"),
            nominal_size: Size::new(240, 180),
            raster_scale: 1.0,
            num_frames: 60,
            num_objects: 6,
            scene: SceneKind::DaySquare,
            camera: Camera::Static,
            class: ObjectClass::Pedestrian,
            fps: 30.0,
            seed,
            min_lifetime: 20,
            max_lifetime: 50,
            lifetime_mix: None,
            lighting_drift: 0.1,
            lighting_period: 15.0,
        })
    }

    let copies = 3usize;
    let streams: Vec<(String, GeneratedVideo)> = (0..copies)
        .map(|i| (format!("cam{i}"), demo_clip(11)))
        .chain(std::iter::once(("cam-distinct".to_string(), demo_clip(99))))
        .collect();
    let verro = Verro::new(eval_config(0.1, 0)).expect("config");
    let dedup_cfg = DedupConfig::default();
    let mut registry = DedupRegistry::new(dedup_cfg);
    let mut stream_json = Vec::new();
    let mut duplicates = 0usize;
    let mut sanitize_secs_total = 0.0;
    let mut saved_secs = 0.0;
    let mut epsilon_charged = 0.0;
    let mut canonical_secs: BTreeMap<String, f64> = BTreeMap::new();
    for (label, video) in &streams {
        let t = Instant::now();
        let signature = StreamSignature::probe(video, dedup_cfg.window, keyframe.stride);
        let probe_secs = t.elapsed().as_secs_f64();
        match registry.claim(label, signature) {
            DedupVerdict::Canonical => {
                let t = Instant::now();
                let result = verro
                    .sanitize(video, video.annotations())
                    .expect("sanitize");
                let secs = t.elapsed().as_secs_f64();
                canonical_secs.insert(label.clone(), secs);
                sanitize_secs_total += secs;
                epsilon_charged += result.privacy.epsilon_rr;
                println!(
                    "  {label}: canonical, sanitized in {secs:.2} s, epsilon_RR {:.2}",
                    result.privacy.epsilon_rr
                );
                stream_json.push(obj(vec![
                    ("stream", Value::from(label.as_str())),
                    ("verdict", Value::from("canonical")),
                    ("probe_secs", Value::from(probe_secs)),
                    ("sanitize_secs", Value::from(secs)),
                    ("epsilon_rr", Value::from(result.privacy.epsilon_rr)),
                ]));
            }
            DedupVerdict::DuplicateOf {
                canonical,
                shift,
                mean_distance,
            } => {
                duplicates += 1;
                saved_secs += canonical_secs.get(&canonical).copied().unwrap_or(0.0);
                println!(
                    "  {label}: duplicate of {canonical} (shift {shift}, mean distance \
                     {mean_distance:.1}) — skipped, no epsilon charged"
                );
                stream_json.push(obj(vec![
                    ("stream", Value::from(label.as_str())),
                    ("verdict", Value::from("duplicate")),
                    ("duplicate_of", Value::from(canonical.as_str())),
                    ("shift", Value::from(shift as i64)),
                    ("mean_distance", Value::from(mean_distance)),
                    ("probe_secs", Value::from(probe_secs)),
                    ("epsilon_rr", Value::from(0.0)),
                ]));
            }
        }
    }
    assert_eq!(
        duplicates,
        copies - 1,
        "every extra copy must be flagged as a duplicate"
    );
    assert_eq!(
        registry.canonical_labels().len(),
        2,
        "exactly one canonical stream per distinct scene"
    );
    let hit_rate = duplicates as f64 / streams.len() as f64;
    println!(
        "  dedup: {duplicates}/{} streams aliased (hit rate {hit_rate:.2}), saved \
         {saved_secs:.2} s of sanitization, epsilon charged once per canonical stream \
         ({epsilon_charged:.2} total)",
        streams.len()
    );

    let value = obj(vec![
        (
            "provenance",
            provenance::capture(
                "cargo run --release -p verro-bench --bin report -- --bench-segment",
            ),
        ),
        ("small", Value::from(small)),
        (
            "per_frame",
            obj(vec![
                ("width", Value::from(size.width)),
                ("height", Value::from(size.height)),
                ("reps", Value::from(reps)),
                ("fingerprint_ms", Value::from(fp_ms)),
                ("hsv_histogram_ms", Value::from(hist_ms)),
                ("cost_ratio", Value::from(hist_ms / fp_ms)),
            ]),
        ),
        (
            "segmentation",
            obj(vec![
                (
                    "idle_heavy",
                    obj(vec![
                        ("frames", Value::from(n_frames)),
                        ("scene_pool", Value::from(pool_len)),
                        ("hold_frames", Value::from(hold)),
                        ("off_ms", Value::from(idle_off_ms)),
                        ("on_ms", Value::from(idle_on_ms)),
                        ("speedup", Value::from(idle_speedup)),
                        ("target_met", Value::from(idle_speedup >= 2.0)),
                        ("sampled", Value::from(idle_stats.sampled)),
                        ("computed", Value::from(idle_stats.computed)),
                        ("reused", Value::from(idle_stats.reused)),
                        ("bit_identical", Value::from(idle_identical)),
                    ]),
                ),
                ("mot_presets", Value::Array(mot_json)),
            ]),
        ),
        (
            "dedup",
            obj(vec![
                ("streams", Value::Array(stream_json)),
                (
                    "canonical_streams",
                    Value::from(registry.canonical_labels().len()),
                ),
                ("duplicates", Value::from(duplicates)),
                ("hit_rate", Value::from(hit_rate)),
                ("sanitize_secs_total", Value::from(sanitize_secs_total)),
                ("saved_sanitize_secs", Value::from(saved_secs)),
                ("epsilon_charged_total", Value::from(epsilon_charged)),
            ]),
        ),
    ]);
    fs::write(
        Path::new(RESULTS_DIR).join("BENCH_segment.json"),
        pretty(&value),
    )
    .expect("write BENCH_segment.json");
    println!("  -> results/BENCH_segment.json\n");
}

// --------------------------------------------------------- Streaming bench

/// `--bench-stream`: the streaming engine's perf record on the three
/// evaluation presets at `EVAL_SCALE`. Each preset runs twice end to end —
/// once through batch `sanitize` + full render (the resident-set profile
/// streaming is built to avoid) and once through `sanitize_streaming`
/// under the default memory budget — with a running FNV fingerprint of
/// every delivered byte proving the two arms render bit-identical `V*`
/// frames. Records steady-state frames/sec, p50/p99/max segment render
/// latency (from the engine's own `segment_render_ms` samples), and the
/// raster high-water mark against the configured ceiling. Writes
/// `results/BENCH_stream.json` with full machine provenance.
fn bench_stream() {
    use verro_core::StreamOptions;

    println!("-- Streaming bench: stage graph vs batch sanitize+render --");
    let mut presets_json = Vec::new();
    for &preset in MotPreset::ALL.iter() {
        let video = eval_video(preset);
        let spec = video.spec();
        let n = video.num_frames();
        let size = spec.raster_size();
        let frame_bytes = (size.width as usize) * (size.height as usize) * 3;
        let verro = Verro::new(eval_config(0.1, 0)).expect("config");

        // Batch arm. The fingerprint fold is inside the timed region so
        // both arms pay the same per-byte accounting cost.
        let t = Instant::now();
        let batch = verro
            .sanitize(&video, video.annotations())
            .expect("sanitize");
        let rendered = batch.video.render_all();
        let mut batch_fp = 0xcbf2_9ce4_8422_2325u64;
        for frame in &rendered {
            batch_fp = fnv1a(batch_fp, frame.bytes());
        }
        let batch_secs = t.elapsed().as_secs_f64();
        let batch_resident_bytes = rendered.len() * frame_bytes;
        drop(rendered);

        // Streaming arm: same config and seed; the sink folds each frame
        // into the fingerprint the moment it leaves the render stage.
        let options = StreamOptions::default();
        let mut delivered = 0usize;
        let mut stream_fp = 0xcbf2_9ce4_8422_2325u64;
        let t = Instant::now();
        let out = verro
            .sanitize_streaming(&video, video.annotations(), &options, |_, frame| {
                delivered += 1;
                stream_fp = fnv1a(stream_fp, frame.bytes());
            })
            .expect("stream");
        let stream_secs = t.elapsed().as_secs_f64();
        assert_eq!(delivered, n, "streaming must deliver every frame");

        let identical = batch_fp == stream_fp
            && (batch.privacy.epsilon_rr - out.privacy.epsilon_rr).abs() == 0.0;
        let fps = n as f64 / stream_secs;
        let high_water = out.stats.peak_raster_bytes + out.stats.cache.peak_bytes;
        let mut seg_ms = out.stats.segment_render_ms.clone();
        println!(
            "  {}: {n} frames in {} segments, batch {batch_secs:.2} s, \
             stream {stream_secs:.2} s ({fps:.1} fps), peak {:.1} MiB of \
             {:.1} MiB budget, bit-identical: {identical}",
            spec.name,
            out.stats.segments,
            high_water as f64 / 1_048_576.0,
            out.stats.memory_budget as f64 / 1_048_576.0,
        );

        presets_json.push(obj(vec![
            ("preset", Value::from(spec.name.as_str())),
            ("frames", Value::from(n)),
            ("segments", Value::from(out.stats.segments)),
            ("frame_bytes", Value::from(frame_bytes)),
            ("batch_secs", Value::from(batch_secs)),
            ("stream_secs", Value::from(stream_secs)),
            ("stream_fps", Value::from(fps)),
            ("real_time", Value::from(fps >= spec.fps)),
            ("segment_render_latency", latency_stats_ms(&mut seg_ms)),
            (
                "memory",
                obj(vec![
                    ("budget_bytes", Value::from(out.stats.memory_budget)),
                    ("render_slots", Value::from(out.stats.render_slots)),
                    ("cache_budget_bytes", Value::from(out.stats.cache_budget)),
                    (
                        "peak_raster_bytes",
                        Value::from(out.stats.peak_raster_bytes),
                    ),
                    ("cache_peak_bytes", Value::from(out.stats.cache.peak_bytes)),
                    ("high_water_bytes", Value::from(high_water)),
                    ("batch_rendered_bytes", Value::from(batch_resident_bytes)),
                ]),
            ),
            ("bit_identical", Value::from(identical)),
        ]));
    }

    let value = obj(vec![
        (
            "provenance",
            provenance::capture(
                "cargo run --release -p verro-bench --bin report -- --bench-stream",
            ),
        ),
        ("eval_scale", Value::from(EVAL_SCALE)),
        ("presets", Value::Array(presets_json)),
    ]);
    fs::write(
        Path::new(RESULTS_DIR).join("BENCH_stream.json"),
        pretty(&value),
    )
    .expect("write BENCH_stream.json");
    println!("  -> results/BENCH_stream.json\n");
}

// ------------------------------------------------------- query-layer bench

/// `--bench-query`: utility-vs-ε curves of the DP analytics layer. For each
/// flip probability in [`F_SWEEP`] it runs the full release → query path
/// (Phase I on the deterministic audit fixture, `QueryArtifact`,
/// `QueryEngine` over an ephemeral ledger) many times and records, per query
/// family, the root-mean-square error against each trial's own ground
/// truth, the mean CI half-width, and the empirical CI coverage, beside the
/// exact ε a full-scope query costs a tenant at that flip. Writes
/// `results/BENCH_query.json`; the report is a deterministic function of
/// [`EVAL_SEED`].
fn bench_query() {
    use verro_audit::fixtures;
    use verro_audit::mc::derive_seed;
    use verro_core::VerroConfig;
    use verro_ldp::debias_variance;
    use verro_query::{LedgerStore, QueryArtifact, QueryEngine, QueryScope};

    const TRIALS_PER_FLIP: usize = 48;
    const CONFIDENCE: f64 = 0.95;

    println!("-- Query-layer bench: utility vs epsilon --");
    let annotations = fixtures::audit_annotations();
    let key_frames = fixtures::audit_key_frames();
    let mut curve = Vec::new();
    for (fi, &flip) in F_SWEEP.iter().enumerate() {
        let config = VerroConfig::default().with_flip(flip);
        // (sq_err_sum, half_width_sum, hits, samples) per family.
        let mut fam = BTreeMap::<&str, (f64, f64, usize, usize)>::new();
        let mut epsilon_query = 0.0;
        let mut epsilon_first_touch = 0.0;
        for trial in 0..TRIALS_PER_FLIP {
            let seed = derive_seed(EVAL_SEED, (fi * TRIALS_PER_FLIP + trial) as u64);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let p1 = run_phase1(&annotations, &key_frames, &config, &mut rng).expect("phase1");
            let privacy = verro_core::PrivacyStatement::from_phase1(&p1, &config);
            let artifact =
                QueryArtifact::from_run("bench", &p1, &privacy, &annotations).expect("artifact");
            let store = LedgerStore::ephemeral("bench", f64::MAX / 2.0).expect("ledger");
            let mut engine = QueryEngine::new(artifact, store).expect("engine");

            let truth = p1.original.column_counts();
            let ans = engine
                .count("bench", &QueryScope::All, CONFIDENCE)
                .expect("count query");
            epsilon_first_touch = privacy.epsilon_total - privacy.epsilon_rr;
            epsilon_query = ans.epsilon_charged - epsilon_first_touch;
            let slot = fam.entry("count").or_default();
            for (item, &t) in ans.items.iter().zip(&truth) {
                slot.0 += (item.estimate - t as f64).powi(2);
                slot.1 += (item.ci_high - item.ci_low) / 2.0;
                slot.3 += 1;
                if item.ci_low <= t as f64 && t as f64 <= item.ci_high {
                    slot.2 += 1;
                }
            }

            for (i, id) in p1.original.ids().iter().enumerate() {
                let t = p1.original.row(i).count_ones() as f64;
                let ans = engine
                    .duration("bench", id.0, CONFIDENCE)
                    .expect("duration query");
                let item = &ans.items[0];
                let slot = fam.entry("duration").or_default();
                slot.0 += (item.estimate - t).powi(2);
                slot.1 += (item.ci_high - item.ci_low) / 2.0;
                slot.3 += 1;
                if item.ci_low <= t && t <= item.ci_high {
                    slot.2 += 1;
                }
            }
        }

        let families: Vec<Value> = fam
            .iter()
            .map(|(name, &(sq, hw, hits, total))| {
                obj(vec![
                    ("family", Value::from(*name)),
                    ("rmse", Value::from((sq / total as f64).sqrt())),
                    ("mean_ci_half_width", Value::from(hw / total as f64)),
                    ("ci_coverage", Value::from(hits as f64 / total as f64)),
                    ("samples", Value::from(total)),
                ])
            })
            .collect();
        // Exact per-bit standard deviation at this flip for scale: a single
        // cell of the presence matrix debiased back.
        let bit_sigma = debias_variance(0.0, 1, flip).expect("variance").sqrt();
        let count = &fam["count"];
        println!(
            "  f = {flip:.1}: eps/query = {epsilon_query:6.2}, count rmse = {:6.3}, \
             coverage = {:.3}",
            (count.0 / count.3 as f64).sqrt(),
            count.2 as f64 / count.3 as f64,
        );
        curve.push(obj(vec![
            ("flip", Value::from(flip)),
            ("epsilon_per_count_query", Value::from(epsilon_query)),
            ("epsilon_first_touch", Value::from(epsilon_first_touch)),
            ("per_bit_sigma", Value::from(bit_sigma)),
            ("families", Value::Array(families)),
        ]));
    }

    let value = obj(vec![
        (
            "provenance",
            provenance::capture("cargo run --release -p verro-bench --bin report -- --bench-query"),
        ),
        ("seed", Value::from(EVAL_SEED)),
        ("trials_per_flip", Value::from(TRIALS_PER_FLIP)),
        ("confidence", Value::from(CONFIDENCE)),
        ("curve", Value::Array(curve)),
    ]);
    fs::write(
        Path::new(RESULTS_DIR).join("BENCH_query.json"),
        pretty(&value),
    )
    .expect("write BENCH_query.json");
    println!("  -> results/BENCH_query.json\n");
}

// ---------------------------------------------------------------- ε-audit

/// The empirical ε-audit at the default configuration and seed 0 — the same
/// run `verro audit --seed 0` performs — recorded beside the bench numbers
/// so every report captures whether the mechanisms still meet their stated
/// guarantee. Writes `results/audit.json` (byte-identical across reruns).
fn audit() -> serde_json::Value {
    use verro_core::VerroConfig;

    println!("-- Empirical ε-audit (default config, seed 0) --");
    let opts = verro_audit::AuditOptions::default();
    let report = verro_audit::run_audit(&VerroConfig::default(), 0, &opts).expect("audit");
    for check in &report.checks {
        println!("  check {:<26} {:?}", check.name, check.verdict);
    }
    println!(
        "  mc: {} pairs on {}/{} trials, eps_total {:.3} (+{:.3} slack), worst ucb {:.3} -> {:?}",
        report.mc.pairs.len(),
        report.mc.trials_used,
        report.mc.trials,
        report.mc.epsilon_total,
        report.mc.slack,
        report
            .mc
            .pairs
            .first()
            .map_or(0.0, |p| p.empirical_epsilon_ucb),
        report.mc.verdict
    );
    let json = report.to_json_pretty();
    fs::write(
        Path::new(RESULTS_DIR).join("audit.json"),
        format!("{json}\n"),
    )
    .expect("write audit.json");
    println!("  -> results/audit.json (all_pass = {})\n", report.all_pass);
    serde_json::to_value(&report).expect("serialize")
}

// -------------------------------------------------------------- Ablations

/// Utility ablations for the design decisions in DESIGN.md §6: objective
/// form, overshoot policy, interpolation order, and count correction —
/// evaluated on the video where each matters most.
fn ablations(
    videos: &[(MotPreset, GeneratedVideo)],
    keyframes: &[KeyFrameResult],
) -> serde_json::Value {
    use verro_core::config::{OvershootPolicy, VerroConfig};
    use verro_core::metrics::count_mae;
    use verro_core::optimize::ObjectiveForm;
    use verro_vision::interp::InterpMethod;

    println!("-- Ablations (utility effect of DESIGN.md §6 decisions) --");
    let mut out = Vec::new();
    let mut run = |label: &str, video_idx: usize, f: f64, cfg: VerroConfig| {
        let (_, v) = &videos[video_idx];
        let kf = &keyframes[video_idx];
        let mut dev = 0.0;
        let mut mae = 0.0;
        let mut picked = 0.0;
        let mut retained = 0.0;
        for trial in 0..TRIALS {
            let mut rng = rand::rngs::StdRng::seed_from_u64(trial * 17 + 3);
            let p1 = run_phase1(v.annotations(), kf, &cfg, &mut rng).expect("phase1");
            let p2 = run_phase2(
                &p1,
                v.annotations(),
                kf,
                v.spec().raster_size(),
                &cfg,
                &mut rng,
            )
            .expect("phase2");
            dev += trajectory_deviation(v.annotations(), &p2.synthetic, &p2.mapping);
            mae += count_mae(v.annotations(), &p2.synthetic);
            picked += p1.num_picked() as f64;
            retained += p2.synthetic.num_objects() as f64;
        }
        let t = TRIALS as f64;
        println!(
            "  {:<34} [{} f={f}]: picked {:>5.1}, retained {:>6.1}, deviation {:.3}, count MAE {:>6.2}",
            label,
            v.spec().name,
            picked / t,
            retained / t,
            dev / t,
            mae / t
        );
        out.push(serde_json::json!({
            "ablation": label, "video": v.spec().name, "f": f,
            "picked": picked / t, "retained": retained / t,
            "deviation": dev / t, "count_mae": mae / t,
        }));
    };

    // Objective form on the sparse video (MOT06, index 2) at low f, where
    // the corrected objective picks ~23 frames and the literal one picks 2.
    let base = |f: f64| eval_config(f, 0);
    run("objective=FullDistortion (default)", 2, 0.1, base(0.1));
    let mut cfg = base(0.1);
    cfg.objective = ObjectiveForm::PaperEq9;
    run("objective=PaperEq9 (literal)", 2, 0.1, cfg);

    // Count correction on MOT06 at low f (spurious-presence inflation).
    run("count_correction=off (paper)", 2, 0.1, base(0.1));
    let mut cfg = base(0.1);
    cfg.count_correction = true;
    run("count_correction=on (extension)", 2, 0.1, cfg);

    // Overshoot policy on MOT03 (index 1).
    run("overshoot=Suppress (paper)", 1, 0.5, base(0.5));
    let mut cfg = base(0.5);
    cfg.overshoot = OvershootPolicy::Clamp;
    run("overshoot=Clamp", 1, 0.5, cfg);

    // Interpolation order on MOT03.
    for (label, m) in [
        (
            "interp=Lagrange w2 (default)",
            InterpMethod::Lagrange { window: 2 },
        ),
        ("interp=Lagrange w4", InterpMethod::Lagrange { window: 4 }),
        ("interp=Nearest", InterpMethod::Nearest),
    ] {
        let mut cfg = base(0.3);
        cfg.interp = m;
        run(label, 1, 0.3, cfg);
    }
    println!();
    serde_json::Value::Array(out)
}
