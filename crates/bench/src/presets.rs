//! Evaluation presets shared by the Criterion benches and the report binary.

use verro_core::config::{BackgroundMode, VerroConfig};
use verro_video::generator::{GeneratedVideo, MotPreset};

/// Raster scale used for the full MOT-sized evaluation runs.
pub const EVAL_SCALE: f64 = 0.25;

/// Master seed of the evaluation.
pub const EVAL_SEED: u64 = 20200330; // EDBT 2020 opening day

/// The flip probabilities swept in Figure 5 / 12 / 13.
pub const F_SWEEP: [f64; 9] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];

/// Generates one of the paper's three evaluation videos.
pub fn eval_video(preset: MotPreset) -> GeneratedVideo {
    GeneratedVideo::generate(preset.spec(EVAL_SCALE, EVAL_SEED))
}

/// The sanitizer configuration used for the evaluation: the paper's
/// defaults with a histogram stride that keeps MOT-scale runs tractable.
pub fn eval_config(f: f64, seed: u64) -> VerroConfig {
    let mut cfg = VerroConfig::default().with_flip(f).with_seed(seed);
    cfg.keyframe.stride = 4;
    cfg.keyframe.tau = 0.94;
    cfg.background = BackgroundMode::TemporalMedian;
    cfg
}

/// A smaller clip for Criterion micro benchmarks (wall-clock friendly).
pub fn bench_video() -> GeneratedVideo {
    use verro_video::generator::VideoSpec;
    use verro_video::{Camera, ObjectClass, SceneKind, Size};
    GeneratedVideo::generate(VideoSpec {
        name: "bench".into(),
        nominal_size: Size::new(240, 180),
        raster_scale: 1.0,
        num_frames: 90,
        num_objects: 12,
        scene: SceneKind::DaySquare,
        camera: Camera::Static,
        class: ObjectClass::Pedestrian,
        fps: 30.0,
        seed: EVAL_SEED,
        min_lifetime: 25,
        max_lifetime: 70,
        lifetime_mix: None,
        lighting_drift: 0.12,
        lighting_period: 18.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use verro_video::source::FrameSource;

    #[test]
    fn eval_config_is_valid_across_sweep() {
        for &f in &F_SWEEP {
            let cfg = eval_config(f, 0);
            assert!(cfg.validate().is_ok(), "f = {f}");
        }
    }

    #[test]
    fn bench_video_has_objects_and_frames() {
        let v = bench_video();
        assert_eq!(v.num_frames(), 90);
        assert!(v.annotations().num_objects() >= 10);
    }

    #[test]
    fn sweep_covers_paper_range() {
        assert_eq!(F_SWEEP.len(), 9);
        assert_eq!(F_SWEEP[0], 0.1);
        assert_eq!(F_SWEEP[8], 0.9);
    }
}
