//! `serde_json::Value` builders and a pretty-printer for the artifact
//! writers.
//!
//! The offline CI container builds against a content-free `serde_json`
//! stand-in whose `json!` macro evaluates to `Value::Null` and whose
//! `to_string_pretty` returns `"{}"`, so any artifact assembled with the
//! macro serializes as nothing there. These helpers construct and render
//! `Value` trees through the enum's *public accessor API*, which the real
//! crate and the stand-in both implement, so `BENCH_*.json` and
//! `report.json` carry real content in every environment.

use serde_json::Value;

/// Builds an object from key/value pairs (insertion order is the map's —
/// alphabetical under a BTreeMap-backed `Map`, insertion order under the
/// real crate's default).
pub fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Escapes a string for a JSON document. Handles the mandatory escapes
/// (quote, backslash, control characters); everything else passes through
/// as UTF-8, which JSON permits.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders one number. Integral values print without a fraction; the rest
/// use Rust's shortest-round-trip `f64` formatting, which is valid JSON
/// for every finite value.
fn render_number(v: &Value) -> String {
    if let Some(u) = v.as_u64() {
        return u.to_string();
    }
    if let Some(i) = v.as_i64() {
        return i.to_string();
    }
    match v.as_f64() {
        Some(f) if f.is_finite() => format!("{f}"),
        _ => "null".to_string(),
    }
}

fn render(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    if v.is_null() {
        out.push_str("null");
    } else if let Some(b) = v.as_bool() {
        out.push_str(if b { "true" } else { "false" });
    } else if let Some(s) = v.as_str() {
        out.push_str(&escape(s));
    } else if let Some(a) = v.as_array() {
        if a.is_empty() {
            out.push_str("[]");
            return;
        }
        out.push_str("[\n");
        for (i, item) in a.iter().enumerate() {
            out.push_str(&pad_in);
            render(item, indent + 1, out);
            if i + 1 < a.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str(&pad);
        out.push(']');
    } else if let Some(m) = v.as_object() {
        if m.is_empty() {
            out.push_str("{}");
            return;
        }
        out.push_str("{\n");
        let n = m.len();
        for (i, (k, item)) in m.iter().enumerate() {
            out.push_str(&pad_in);
            out.push_str(&escape(k));
            out.push_str(": ");
            render(item, indent + 1, out);
            if i + 1 < n {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str(&pad);
        out.push('}');
    } else {
        // The only remaining variant is a number.
        out.push_str(&render_number(v));
    }
}

/// Pretty-prints a `Value` as an indented JSON document (trailing
/// newline included). Works identically against the real `serde_json`
/// and the offline stand-in because it only uses the accessor API.
pub fn pretty(v: &Value) -> String {
    let mut out = String::new();
    render(v, 0, &mut out);
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_renders_nested_content() {
        let v = obj(vec![
            ("name", Value::from("mot01")),
            ("fps", Value::from(30.5_f64)),
            ("frames", Value::from(48_usize)),
            ("ok", Value::from(true)),
            ("none", Value::from(Option::<String>::None)),
            ("list", Value::from(vec![1_u64, 2, 3])),
        ]);
        let s = pretty(&v);
        for needle in [
            "\"name\": \"mot01\"",
            "\"fps\": 30.5",
            "\"frames\": 48",
            "\"ok\": true",
            "\"none\": null",
        ] {
            assert!(s.contains(needle), "missing {needle} in {s}");
        }
        assert!(s.contains('1') && s.contains('3'), "array content: {s}");
        assert!(s.ends_with('\n'));
    }

    #[test]
    fn escapes_strings() {
        let s = pretty(&Value::from("a\"b\\c\nd"));
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"\n");
    }

    #[test]
    fn integral_floats_render_without_fraction() {
        assert_eq!(pretty(&Value::from(24.0_f64)), "24\n");
        assert_eq!(pretty(&Value::from(0.73_f64)), "0.73\n");
    }
}
