//! Benchmarks for Phase II: coordinate assignment, interpolation, and
//! synthetic frame rendering — the "Phase II (Sec)" column of Table 3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use verro_bench::presets::{bench_video, eval_config};
use verro_core::phase1::run_phase1;
use verro_core::phase2::run_phase2;
use verro_core::synthesis::{build_backgrounds, SyntheticVideo};
use verro_video::geometry::Point;
use verro_video::source::FrameSource;
use verro_vision::interp::{interpolate, InterpMethod};
use verro_vision::keyframe::extract_key_frames;

fn bench_interpolation(c: &mut Criterion) {
    let mut group = c.benchmark_group("interpolation");
    for knots in [4usize, 16, 64] {
        let series: Vec<(usize, Point)> = (0..knots)
            .map(|i| (i * 10, Point::new(i as f64 * 7.0, (i % 5) as f64 * 11.0)))
            .collect();
        for method in [
            InterpMethod::Lagrange { window: 4 },
            InterpMethod::Linear,
            InterpMethod::Nearest,
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("{method:?}"), knots),
                &series,
                |b, series| b.iter(|| interpolate(black_box(series), method)),
            );
        }
    }
    group.finish();
}

fn bench_phase2_full(c: &mut Criterion) {
    let video = bench_video();
    let cfg = eval_config(0.1, 0);
    let kf = extract_key_frames(&video, &cfg.keyframe).unwrap();
    let mut rng = StdRng::seed_from_u64(1);
    let p1 = run_phase1(video.annotations(), &kf, &cfg, &mut rng).unwrap();
    c.bench_function("phase2_full", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| {
            run_phase2(
                black_box(&p1),
                video.annotations(),
                &kf,
                video.frame_size(),
                &cfg,
                &mut rng,
            ).unwrap()
        })
    });
}

fn bench_frame_render(c: &mut Criterion) {
    let video = bench_video();
    let cfg = eval_config(0.1, 0);
    let kf = extract_key_frames(&video, &cfg.keyframe).unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    let p1 = run_phase1(video.annotations(), &kf, &cfg, &mut rng).unwrap();
    let p2 = run_phase2(&p1, video.annotations(), &kf, video.frame_size(), &cfg, &mut rng)
        .unwrap();
    let backgrounds = build_backgrounds(&video, video.annotations(), &kf, &cfg).unwrap();
    let synth = SyntheticVideo::new(video.frame_size(), video.fps(), backgrounds, p2.synthetic);
    c.bench_function("synthetic_frame_render", |b| {
        b.iter(|| synth.frame(black_box(45)))
    });
}

criterion_group!(benches, bench_interpolation, bench_phase2_full, bench_frame_render);
criterion_main!(benches);
