//! Substrate micro-benchmarks: Hungarian assignment, Kalman filtering,
//! detection, inpainting, the LDP primitives, and the codec.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use verro_bench::presets::bench_video;
use verro_ldp::laplace::sample_laplace;
use verro_ldp::rappor::{RapporClient, RapporConfig};
use verro_video::codec::encode_video;
use verro_video::geometry::{BBox, Point};
use verro_video::source::{FrameSource, InMemoryVideo};
use verro_vision::bgmodel::{median_background, BackgroundConfig};
use verro_vision::detect::{detect, DetectorConfig};
use verro_vision::inpaint::{inpaint, InpaintConfig, Mask};
use verro_vision::track::hungarian::hungarian;
use verro_vision::track::kalman::Kalman2D;

fn bench_hungarian(c: &mut Criterion) {
    let mut group = c.benchmark_group("hungarian");
    for n in [8usize, 32, 128] {
        let mut rng = StdRng::seed_from_u64(1);
        let cost: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..n).map(|_| rng.gen_range(0.0..100.0)).collect())
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &cost, |b, cost| {
            b.iter(|| hungarian(black_box(cost)))
        });
    }
    group.finish();
}

fn bench_kalman(c: &mut Criterion) {
    c.bench_function("kalman_predict_update", |b| {
        let mut kf = Kalman2D::new(Point::new(0.0, 0.0), 0.5, 1.0);
        let mut t = 0.0f64;
        b.iter(|| {
            t += 1.0;
            kf.predict(1.0);
            kf.update(Point::new(2.0 * t, -t));
            black_box(kf.position())
        })
    });
}

fn bench_detection(c: &mut Criterion) {
    let video = bench_video();
    let bg = median_background(&video, 0, video.num_frames() - 1, &BackgroundConfig::default()).unwrap();
    let frame = video.frame(40);
    c.bench_function("detect_frame", |b| {
        b.iter(|| detect(black_box(&frame), &bg, &DetectorConfig::default()))
    });
}

fn bench_background_model(c: &mut Criterion) {
    let video = bench_video();
    let mut group = c.benchmark_group("median_background");
    group.sample_size(10);
    for samples in [9usize, 25] {
        group.bench_with_input(
            BenchmarkId::from_parameter(samples),
            &samples,
            |b, &samples| {
                b.iter(|| {
                    median_background(
                        black_box(&video),
                        0,
                        video.num_frames() - 1,
                        &BackgroundConfig {
                            max_samples: samples,
                        },
                    )
                    .unwrap()
                })
            },
        );
    }
    group.finish();
}

fn bench_inpaint(c: &mut Criterion) {
    let video = bench_video();
    let frame = video.frame(40);
    let mut group = c.benchmark_group("inpaint");
    group.sample_size(10);
    for hole in [8.0f64, 16.0] {
        let mask = Mask::from_boxes(
            frame.width(),
            frame.height(),
            &[BBox::new(100.0, 80.0, hole, hole * 2.0)],
        );
        group.bench_with_input(
            BenchmarkId::new("exemplar", format!("{hole}px")),
            &mask,
            |b, mask| {
                b.iter(|| {
                    let mut img = frame.clone();
                    inpaint(&mut img, black_box(mask), &InpaintConfig::default())
                        .expect("mask matches frame dimensions");
                    img
                })
            },
        );
    }
    group.finish();
}

fn bench_ldp_primitives(c: &mut Criterion) {
    c.bench_function("laplace_sample", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| sample_laplace(black_box(2.0), &mut rng).unwrap())
    });
    c.bench_function("rappor_report", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        let client = RapporClient::new(b"value", RapporConfig::default(), &mut rng).unwrap();
        b.iter(|| client.report(&mut rng))
    });
}

fn bench_codec(c: &mut Criterion) {
    let video = bench_video();
    let clip = InMemoryVideo::new((0..20).map(|k| video.frame(k)).collect(), video.fps());
    let mut group = c.benchmark_group("codec");
    group.sample_size(10);
    group.bench_function("encode_20_frames", |b| {
        b.iter(|| encode_video(black_box(&clip)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_hungarian,
    bench_kalman,
    bench_detection,
    bench_background_model,
    bench_inpaint,
    bench_ldp_primitives,
    bench_codec
);
criterion_main!(benches);
