//! End-to-end sanitization benchmarks — the Table 3 runtime profile on a
//! bench-scale clip, across the flip-probability sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use verro_bench::presets::{bench_video, eval_config};
use verro_core::Verro;
use verro_video::codec::encode_video;
use verro_video::source::{FrameSource, InMemoryVideo};

fn bench_sanitize(c: &mut Criterion) {
    let video = bench_video();
    let mut group = c.benchmark_group("sanitize_e2e");
    group.sample_size(10);
    for f in [0.1, 0.5, 0.9] {
        group.bench_with_input(BenchmarkId::new("f", format!("{f}")), &f, |b, &f| {
            let verro = Verro::new(eval_config(f, 0)).unwrap();
            b.iter(|| {
                verro
                    .sanitize(black_box(&video), video.annotations())
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_render_encode(c: &mut Criterion) {
    // The publish step: render all frames of V* and encode them.
    let video = bench_video();
    let verro = Verro::new(eval_config(0.1, 0)).unwrap();
    let result = verro.sanitize(&video, video.annotations()).unwrap();
    let mut group = c.benchmark_group("publish");
    group.sample_size(10);
    group.bench_function("render_and_encode", |b| {
        b.iter(|| {
            let clip = InMemoryVideo::new(
                (0..result.video.num_frames())
                    .map(|k| result.video.frame(k))
                    .collect(),
                result.video.fps(),
            );
            encode_video(black_box(&clip))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sanitize, bench_render_encode);
criterion_main!(benches);
