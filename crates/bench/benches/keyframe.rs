//! Benchmarks for Algorithm 2 (segmentation + key-frame extraction) — the
//! preprocessing cost behind Table 2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use verro_bench::presets::bench_video;
use verro_video::source::FrameSource;
use verro_vision::histogram::{HsvBins, HsvHistogram};
use verro_vision::keyframe::{extract_key_frames, segment_histograms, KeyFrameConfig};

fn bench_histogram(c: &mut Criterion) {
    let video = bench_video();
    let frame = video.frame(10);
    let mut group = c.benchmark_group("hsv_histogram");
    for bins in [HsvBins::new(8, 4, 4), HsvBins::default(), HsvBins::new(32, 16, 16)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}x{}x{}", bins.h, bins.s, bins.v)),
            &bins,
            |b, &bins| b.iter(|| HsvHistogram::of(black_box(&frame), bins)),
        );
    }
    group.finish();
}

fn bench_extraction(c: &mut Criterion) {
    let video = bench_video();
    let mut group = c.benchmark_group("keyframe_extraction");
    group.sample_size(10);
    for stride in [1usize, 2, 4] {
        let mut cfg = KeyFrameConfig::default();
        cfg.stride = stride;
        group.bench_with_input(BenchmarkId::new("stride", stride), &cfg, |b, cfg| {
            b.iter(|| extract_key_frames(black_box(&video), cfg).unwrap())
        });
    }
    group.finish();
}

fn bench_segmentation_only(c: &mut Criterion) {
    // Isolate the clustering pass from histogram computation.
    let video = bench_video();
    let cfg = KeyFrameConfig::default();
    let frames: Vec<usize> = (0..video.num_frames()).collect();
    let histograms: Vec<HsvHistogram> = frames
        .iter()
        .map(|&k| HsvHistogram::of(&video.frame(k), cfg.bins))
        .collect();
    c.bench_function("segmentation_pass", |b| {
        b.iter(|| segment_histograms(black_box(&frames), black_box(&histograms), &cfg))
    });
}

criterion_group!(benches, bench_histogram, bench_extraction, bench_segmentation_only);
criterion_main!(benches);
