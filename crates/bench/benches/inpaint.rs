//! Benchmarks for exemplar inpainting — the dominant preprocessing cost
//! behind background reconstruction (Table 3's "preprocess" row).
//!
//! Compares the incremental engine against the retained naive reference on
//! the acceptance workload (128×96 frame, 30×40 hole) and a few hole-size
//! variants. `cargo bench -p verro-bench --bench inpaint -- --quick` gives a
//! fast smoke run; `results/BENCH_inpaint.json` is written by
//! `cargo run -p verro-bench --bin report -- --bench-inpaint`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use verro_video::color::Rgb;
use verro_video::geometry::Size;
use verro_video::image::ImageBuffer;
use verro_vision::inpaint::{inpaint_exemplar, inpaint_exemplar_naive, InpaintConfig, Mask};

fn workload(w: u32, h: u32, hole: (u32, u32, u32, u32)) -> (ImageBuffer, Mask) {
    let img = ImageBuffer::from_fn(Size::new(w, h), |x, y| {
        if ((x / 4) + (y / 6)) % 2 == 0 {
            Rgb::new(200, 180, 160)
        } else {
            Rgb::new(60, 80, 100)
        }
    });
    let mut mask = Mask::new(w, h);
    let (hx, hy, hw, hh) = hole;
    for y in hy..(hy + hh).min(h) {
        for x in hx..(hx + hw).min(w) {
            mask.set(x, y, true);
        }
    }
    (img, mask)
}

fn bench_engines(c: &mut Criterion) {
    let cfg = InpaintConfig::default();
    let (img, mask) = workload(128, 96, (49, 28, 30, 40));

    let mut group = c.benchmark_group("inpaint_128x96_hole30x40");
    group.sample_size(10);
    group.bench_function("naive", |b| {
        b.iter(|| {
            let mut out = img.clone();
            inpaint_exemplar_naive(black_box(&mut out), &mut mask.clone(), &cfg);
            out
        })
    });
    group.bench_function("incremental", |b| {
        b.iter(|| {
            let mut out = img.clone();
            inpaint_exemplar(black_box(&mut out), &mut mask.clone(), &cfg);
            out
        })
    });
    group.finish();
}

fn bench_hole_sizes(c: &mut Criterion) {
    let cfg = InpaintConfig::default();
    let mut group = c.benchmark_group("inpaint_incremental_hole_size");
    group.sample_size(10);
    for hole in [8u32, 16, 24, 40] {
        let (img, mask) = workload(128, 96, (49, 28, hole.min(30), hole));
        group.bench_with_input(BenchmarkId::from_parameter(hole), &hole, |b, _| {
            b.iter(|| {
                let mut out = img.clone();
                inpaint_exemplar(black_box(&mut out), &mut mask.clone(), &cfg);
                out
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engines, bench_hole_sizes);
criterion_main!(benches);
