//! Ablation benchmarks for the design choices called out in DESIGN.md:
//! optimizer strategy and objective form, interpolation method, background
//! reconstruction mode, and the optimizer's Laplace noise level.
//!
//! These measure *runtime*; the corresponding *utility* ablations are
//! emitted by the report binary and EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use verro_bench::presets::{bench_video, eval_config};
use verro_core::config::{BackgroundMode, OptimizerStrategy};
use verro_core::naive::randomize_naive;
use verro_core::optimize::{pick_from_counts, ObjectiveForm};
use verro_core::phase1::run_phase1;
use verro_core::presence::PresenceMatrix;
use verro_core::synthesis::build_backgrounds;
use verro_vision::interp::{interpolate, InterpMethod};
use verro_vision::keyframe::extract_key_frames;

fn ablate_optimizer(c: &mut Criterion) {
    let counts: Vec<f64> = (0..64).map(|k| ((k * 7) % 13) as f64).collect();
    let mut group = c.benchmark_group("ablate_optimizer");
    for (name, strategy, form) in [
        ("lp_full", OptimizerStrategy::LpRounding, ObjectiveForm::FullDistortion),
        ("lp_eq9", OptimizerStrategy::LpRounding, ObjectiveForm::PaperEq9),
        ("exact_full", OptimizerStrategy::Exact, ObjectiveForm::FullDistortion),
        ("all", OptimizerStrategy::AllKeyFrames, ObjectiveForm::FullDistortion),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                pick_from_counts(black_box(&counts), 12, 0.3, strategy, form, 2).unwrap()
            })
        });
    }
    group.finish();
}

fn ablate_naive_vs_phase1(c: &mut Criterion) {
    let video = bench_video();
    let matrix = PresenceMatrix::from_annotations(video.annotations());
    let cfg = eval_config(0.5, 0);
    let kf = extract_key_frames(&video, &cfg.keyframe).unwrap();
    let mut group = c.benchmark_group("ablate_naive_vs_phase1");
    group.bench_function("naive_algorithm1", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| randomize_naive(black_box(&matrix), 5.0, &mut rng).unwrap())
    });
    group.bench_function("phase1_optimized", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| run_phase1(black_box(video.annotations()), &kf, &cfg, &mut rng).unwrap())
    });
    group.finish();
}

fn ablate_interpolation(c: &mut Criterion) {
    let knots: Vec<(usize, verro_video::geometry::Point)> = (0..20)
        .map(|i| {
            (
                i * 9,
                verro_video::geometry::Point::new(i as f64 * 11.0, 50.0 + (i % 4) as f64 * 13.0),
            )
        })
        .collect();
    let mut group = c.benchmark_group("ablate_interp");
    for (name, method) in [
        ("lagrange4", InterpMethod::Lagrange { window: 4 }),
        ("lagrange8", InterpMethod::Lagrange { window: 8 }),
        ("linear", InterpMethod::Linear),
        ("nearest", InterpMethod::Nearest),
    ] {
        group.bench_function(name, |b| b.iter(|| interpolate(black_box(&knots), method)));
    }
    group.finish();
}

fn ablate_background(c: &mut Criterion) {
    let video = bench_video();
    let cfg_median = {
        let mut c = eval_config(0.1, 0);
        c.background = BackgroundMode::TemporalMedian;
        c
    };
    let cfg_inpaint = {
        let mut c = eval_config(0.1, 0);
        c.background = BackgroundMode::KeyFrameInpaint;
        c
    };
    let kf = extract_key_frames(&video, &cfg_median.keyframe).unwrap();
    let mut group = c.benchmark_group("ablate_background");
    group.sample_size(10);
    group.bench_function("temporal_median", |b| {
        b.iter(|| build_backgrounds(black_box(&video), video.annotations(), &kf, &cfg_median).unwrap())
    });
    group.bench_function("keyframe_inpaint", |b| {
        b.iter(|| build_backgrounds(black_box(&video), video.annotations(), &kf, &cfg_inpaint).unwrap())
    });
    group.finish();
}

fn ablate_optimizer_noise(c: &mut Criterion) {
    let video = bench_video();
    let cfg_base = eval_config(0.3, 0);
    let kf = extract_key_frames(&video, &cfg_base.keyframe).unwrap();
    let mut group = c.benchmark_group("ablate_opt_noise");
    for eps in [None, Some(0.1), Some(1.0), Some(10.0)] {
        let mut cfg = cfg_base.clone();
        cfg.optimizer_noise_epsilon = eps;
        let label = eps.map_or("off".to_string(), |e| format!("eps{e}"));
        group.bench_with_input(BenchmarkId::from_parameter(label), &cfg, |b, cfg| {
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| run_phase1(black_box(video.annotations()), &kf, cfg, &mut rng).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    ablate_optimizer,
    ablate_naive_vs_phase1,
    ablate_interpolation,
    ablate_background,
    ablate_optimizer_noise
);
criterion_main!(benches);
