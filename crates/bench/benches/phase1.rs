//! Benchmarks for Phase I: presence extraction, the Equation 9 optimizer,
//! and randomized response — the "Phase I (Sec)" column of Table 3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use verro_bench::presets::{bench_video, eval_config};
use verro_core::config::OptimizerStrategy;
use verro_core::optimize::{pick_from_counts, ObjectiveForm};
use verro_core::phase1::run_phase1;
use verro_core::presence::PresenceMatrix;
use verro_ldp::bitvec::BitVec;
use verro_ldp::rr::{randomize_budget, randomize_flip};
use verro_vision::keyframe::extract_key_frames;

fn bench_presence_matrix(c: &mut Criterion) {
    let video = bench_video();
    c.bench_function("presence_matrix_build", |b| {
        b.iter(|| PresenceMatrix::from_annotations(black_box(video.annotations())))
    });
}

fn bench_randomized_response(c: &mut Criterion) {
    let mut group = c.benchmark_group("randomized_response");
    for bits in [64usize, 512, 4096] {
        let mut v = BitVec::zeros(bits);
        for i in (0..bits).step_by(7) {
            v.set(i, true);
        }
        group.bench_with_input(BenchmarkId::new("flip_f0.3", bits), &v, |b, v| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| randomize_flip(black_box(v), 0.3, &mut rng).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("budget_eps3", bits), &v, |b, v| {
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| randomize_budget(black_box(v), 3.0, &mut rng))
        });
    }
    group.finish();
}

fn bench_optimizer(c: &mut Criterion) {
    let mut group = c.benchmark_group("frame_picking");
    for ell in [16usize, 64, 256] {
        let counts: Vec<f64> = (0..ell).map(|k| ((k * 13) % 11) as f64).collect();
        for strategy in [OptimizerStrategy::LpRounding, OptimizerStrategy::Exact] {
            group.bench_with_input(
                BenchmarkId::new(format!("{strategy:?}"), ell),
                &counts,
                |b, counts| {
                    b.iter(|| {
                        pick_from_counts(
                            black_box(counts),
                            12,
                            0.2,
                            strategy,
                            ObjectiveForm::FullDistortion,
                            2,
                        )
                        .unwrap()
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_phase1_end_to_end(c: &mut Criterion) {
    let video = bench_video();
    let cfg = eval_config(0.1, 0);
    let kf = extract_key_frames(&video, &cfg.keyframe).unwrap();
    c.bench_function("phase1_full", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| run_phase1(black_box(video.annotations()), &kf, &cfg, &mut rng).unwrap())
    });
}

criterion_group!(
    benches,
    bench_presence_matrix,
    bench_randomized_response,
    bench_optimizer,
    bench_phase1_end_to_end
);
criterion_main!(benches);
