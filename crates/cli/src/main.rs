//! `verro` — command-line video sanitizer.
//!
//! Operates on portable artifacts so it composes with any video toolchain:
//! frames come in as a directory of numbered PPM files (`ffmpeg -i in.mp4
//! frames/%06d.ppm`), annotations as a MOT Challenge ground-truth text file
//! (or are produced by the built-in detector+tracker). Output is a directory
//! of sanitized PPM frames, the synthetic MOT file, and a privacy statement.
//!
//! ```text
//! verro sanitize --frames ./frames --out ./sanitized [--gt gt.txt] \
//!                [--flip 0.1 | --epsilon 20] [--seed 7] [--fast] [--track]
//! verro stream   --frames ./a,./b --gt a.txt,b.txt --out ./sanitized \
//!                [--stream-budget 256] [--streams from dirs]
//! verro demo     --out ./demo [--flip 0.1]
//! verro audit    [--seed 0] [--trials 4000] [--flip 0.1] [--out report.json]
//! verro audit    --queries [--seed 0] [--trials 600]
//! verro query    --artifact ./out/phase1.json --ledger ./ledger.json \
//!                --tenant acme --query count [--frames 0,2] [--cap 40]
//! verro help
//! ```
//!
//! Every sanitize/demo run also writes `phase1.json` — the randomized
//! presence artifact — next to the sanitized frames, so the DP analytics
//! layer (`verro query`) can answer count/duration/histogram queries later
//! without re-running the pipeline.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;
use verro_core::config::BackgroundMode;
use verro_core::journal::{fnv1a_seed, frame_fold};
use verro_core::stream::{CheckpointOptions, SegmentSink};
use verro_core::supervise::{
    supervise, CancelToken, DedupConfig, DedupRegistry, DedupVerdict, StreamSignature,
    SupervisorPolicy, SupervisorReport,
};
use verro_core::{KernelMode, Verro, VerroConfig, VerroError};
use verro_query::{LedgerLock, LedgerStore, QueryArtifact, QueryEngine, QueryError, QueryScope};
use verro_video::annotations::VideoAnnotations;
use verro_video::fault::{FaultSchedule, FaultySource, PixelRect, SourceError, TryFrameSource};
use verro_video::geometry::Size;
use verro_video::image::ImageBuffer;
use verro_video::object::ObjectClass;
use verro_video::recover::{CorruptAction, RecoveryPolicy};
use verro_video::sink::{FaultySink, PpmDirSink, RecoveringSink, SinkFaultSchedule, SinkHealth};
use verro_video::source::{FrameSource, InMemoryVideo};
use verro_vision::detect::DetectorConfig;
use verro_vision::fingerprint::FingerprintMode;
use verro_vision::track::TrackerConfig;

/// SIGINT → graceful drain. The handler only flips a static atomic; the
/// stream command polls it from an ordinary thread and cancels each
/// stream's interrupt token, so the whole drain path is safe code.
#[cfg(unix)]
mod sigint {
    use std::sync::atomic::{AtomicBool, Ordering};

    static INTERRUPTED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_sigint(_sig: i32) {
        INTERRUPTED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    /// Installs the SIGINT (2) handler. Idempotent.
    pub fn install() {
        // SAFETY: the handler only stores to a static atomic, which is
        // async-signal-safe; `signal` itself has no memory preconditions.
        unsafe {
            signal(2, on_sigint as extern "C" fn(i32) as usize);
        }
    }

    pub fn interrupted() -> bool {
        INTERRUPTED.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod sigint {
    pub fn install() {}

    pub fn interrupted() -> bool {
        false
    }
}

const USAGE: &str = "\
verro — publish video data with indistinguishable objects (VERRO, EDBT 2020)

USAGE:
    verro sanitize --frames <DIR> --out <DIR> [OPTIONS]
    verro stream (--frames <DIR>[,<DIR>...] --gt <FILE>[,<FILE>...] | --demo <N>)
                 --out <DIR> [OPTIONS]
    verro demo --out <DIR> [--flip <F>]
    verro audit [OPTIONS]
    verro query --artifact <FILE> --ledger <FILE> --tenant <NAME>
                --query <count|duration|histogram> [OPTIONS]
    verro help

SANITIZE OPTIONS:
    --frames <DIR>     directory of numbered .ppm frames (sorted by name)
    --gt <FILE>        MOT ground-truth file (frame,id,x,y,w,h,...); when
                       absent, the built-in detector+tracker runs (--track
                       is then implied)
    --out <DIR>        output directory (created if missing)
    --flip <F>         flip probability f in (0,1]          [default: 0.1]
    --epsilon <E>      total epsilon budget instead of --flip
    --seed <N>         randomness seed                       [default: 0]
    --fps <N>          frame rate for timing metadata        [default: 30]
    --fast             temporal-median backgrounds instead of inpainting
    --track            force detector+tracker preprocessing even with --gt
    --cache-budget <M> decoded-frame cache budget in MiB (0 disables; the
                       output is byte-identical either way) [default: 256]
    --kernels <MODE>   kernel dispatch: auto | scalar | simd (vector arms
                       are bit-identical to scalar; auto detects the CPU
                       and honors VERRO_KERNELS)            [default: auto]
    --fingerprint <M>  segmentation pre-filter: auto | off. `auto` screens
                       each sampled frame with a gradient fingerprint and
                       reuses the previous HSV histogram only for exact
                       byte-duplicates, so the result is bit-identical to
                       `off` (DESIGN.md sec. 15)            [default: auto]

STREAM OPTIONS:
    verro stream runs the stage-per-segment streaming engine: frames are
    decoded lazily, rendered V* frames are written as they leave the render
    stage, and resident raster bytes stay under the streaming budget. The
    privacy statement is byte-identical to `verro sanitize` on the same
    input. Each comma-separated frame directory (or each of the N demo
    clips) is one stream; streams run concurrently on their own threads.
    --frames <DIRS>    comma-separated .ppm frame directories, one stream
                       each, decoded on demand (never fully resident)
    --gt <FILES>       comma-separated MOT ground-truth files, one per
                       stream; required with --frames (the detector+tracker
                       path is batch-only)
    --demo <N>         drive N generated demo streams instead of directories
    --out <DIR>        output root; stream i writes stream<i>/ under it
                       (a single stream writes directly into <DIR>)
    --stream-budget <M> per-stream working-set ceiling in MiB [default: 256]
    --chunk <N>        histogram batch size on the ingest channel
                                                            [default: 16]
    --resume <DIR>     resume an interrupted/killed run from its output
                       directory (reads each stream's run.journal; exclusive
                       with --out; inputs and flags must be re-specified).
                       Completed segments are verified byte-for-byte and
                       skipped; any seed/config/input mismatch is refused
                       (exit 4) — resume never re-randomizes
    --stall-timeout <S> per-stream stall watchdog deadline in seconds; a
                       stream making no progress for this long is cancelled
                       and restarted from its journal (0 disables)
                                                            [default: 0]
    --max-restarts <N> stall restarts per stream before it fails typed
                                                            [default: 2]
    --inject-sink-faults  wrap each stream's output sink in the
                       deterministic sink-fault injector (ENOSPC, short
                       writes, rename failures; retried under the recovery
                       policy, recorded never slept)
    --sink-fault-rate <R> injected sink-fault intensity in [0, 1]
                                                            [default: 0.15]
    --sink-fault-seed <N> sink-fault schedule seed          [default: 1]
    --dedup-streams    probe every input with a cheap fingerprint signature
                       before sanitizing; streams that are near-duplicates
                       of an earlier (canonical) input are not sanitized
                       again — their output directory gets an alias
                       privacy.json naming the canonical stream, epsilon is
                       charged once per canonical stream, and non-duplicate
                       streams produce byte-identical output either way
    sanitize options --flip/--epsilon/--seed/--fast/--fps/--kernels/
    --fingerprint and the recovery options below also apply;
    --inject-faults needs --demo (file streams carry real I/O faults
    already)

    Each stream runs under a supervisor: a panic in one stream is caught at
    the stream boundary (exit 4, siblings finish), every committed segment
    is journaled durably (write-tmp -> fsync -> rename), and SIGINT drains
    at the next segment boundary, commits the journal, writes a valid
    partial manifest, and exits 6 so `--resume` can continue the run
    byte-identically.

RECOVERY OPTIONS (sanitize, stream, and demo):
    --max-retries <N>  retry budget per frame for transient faults [default: 3]
    --on-corrupt <A>   unrecoverable-frame action: repair | skip | fail
                                                            [default: repair]
    --inject-faults    wrap the source in the deterministic fault injector
                       (fault drills; degradation is utility-only, never ε)
    --fault-rate <R>   injected fault intensity in [0, 1]   [default: 0.15]
    --fault-seed <N>   fault schedule seed                  [default: 1]

AUDIT OPTIONS:
    --seed <N>         master audit seed (byte-identical rerun) [default: 0]
    --trials <N>       Monte-Carlo Phase I trials              [default: 4000]
    --flip <F>         flip probability to audit               [default: 0.1]
    --epsilon <E>      total epsilon budget instead of --flip
    --queries          certify the DP query layer instead: estimator
                       unbiasedness, CI coverage, and bit-exact ε-ledger
                       accounting (--trials then defaults to 600)
    --out <FILE>       also write the JSON report to this file
                       (always printed to stdout)

QUERY OPTIONS:
    verro query answers DP analytics queries from the phase1.json artifact a
    sanitize/demo run wrote, debiased per Sec. 3.2, with every answer charged
    to the tenant's ε-ledger under sequential composition. The ledger file is
    created on first use and updated atomically (write-then-rename).
    --artifact <FILE>  phase1.json written by sanitize/demo/stream
    --ledger <FILE>    per-stream ε-ledger (created if missing)
    --tenant <NAME>    tenant whose budget the query is charged to
    --query <KIND>     count | duration | histogram
    --frames <LIST>    count only: comma-separated picked-frame positions
                       (0-based; default: all picked frames)
    --object <ID>      duration only: the object id to query
    --cap <E>          per-tenant ε cap when creating a new ledger (a stored
                       cap always wins on reopen)  [default: 3x the
                       artifact's epsilon_total]
    --confidence <C>   confidence level of the intervals    [default: 0.95]
    --lock-wait-ms <N> how long to wait for the ledger's advisory file lock
                       when another verro process holds it (charges are
                       serialized so none can be lost); 0 fails immediately
                                                            [default: 5000]

OUTPUT:
    <out>/000000.ppm ...   sanitized frames
    <out>/synthetic_gt.txt the synthetic objects' MOT annotations
    <out>/privacy.json     the privacy statement + utility report
    <out>/phase1.json      randomized presence artifact for `verro query`

EXIT CODES:
    0  success (audit: every check passed)
    1  audit found a failing check
    2  usage error (bad flags or missing arguments)
    3  unreadable or malformed input data, or the frame source exhausted
       fault recovery (SourceExhausted)
    4  the sanitizer rejected the input (typed pipeline error)
    5  the tenant's epsilon budget is exhausted (BudgetExhausted); nothing
       was charged and no estimate was revealed
    6  the run was interrupted (SIGINT): every committed segment is
       journaled and on disk; `verro stream --resume <out>` continues the
       run byte-identically";

/// Typed CLI failure; each class maps to a distinct exit code so scripts
/// can tell usage mistakes from bad data from pipeline rejections.
#[derive(Debug)]
enum CliError {
    /// Bad flags / missing arguments.
    Usage(String),
    /// I/O failure or malformed input file.
    Data(String),
    /// The sanitizer itself rejected the input.
    Pipeline(VerroError),
    /// The query layer rejected the request.
    Query(QueryError),
    /// The run drained on an operator interrupt with its journal
    /// committed; the message says how to resume.
    Interrupted(String),
}

impl CliError {
    fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            // An exhausted frame source is bad input data, not a pipeline
            // rejection — scripts retrying ingest should see code 3.
            CliError::Data(_) | CliError::Pipeline(VerroError::SourceExhausted { .. }) => 3,
            CliError::Pipeline(_) => 4,
            CliError::Interrupted(_) => 6,
            CliError::Query(e) => match e {
                // The documented budget signal: scripts distinguish "stop
                // querying this tenant" from every other failure.
                QueryError::BudgetExhausted { .. } => 5,
                // Caller mistakes in the query itself are usage errors.
                QueryError::UnknownObject { .. }
                | QueryError::UnknownClass { .. }
                | QueryError::FrameOutOfRange { .. }
                | QueryError::EmptyScope
                | QueryError::BadConfidence { .. } => 2,
                // Broken artifacts/ledgers are bad input data.
                _ => 3,
            },
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Data(msg) => write!(f, "{msg}"),
            CliError::Pipeline(e) => write!(f, "{e}"),
            CliError::Query(e) => write!(f, "{e}"),
            CliError::Interrupted(msg) => write!(f, "{msg}"),
        }
    }
}

impl From<VerroError> for CliError {
    fn from(e: VerroError) -> Self {
        CliError::Pipeline(e)
    }
}

impl From<QueryError> for CliError {
    fn from(e: QueryError) -> Self {
        CliError::Query(e)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("sanitize") => match cmd_sanitize(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(e.exit_code())
            }
        },
        Some("stream") => match cmd_stream(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(e.exit_code())
            }
        },
        Some("demo") => match cmd_demo(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(e.exit_code())
            }
        },
        Some("audit") => match cmd_audit(&args[1..]) {
            Ok(all_pass) => {
                if all_pass {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(e.exit_code())
            }
        },
        Some("query") => match cmd_query(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(e.exit_code())
            }
        },
        Some("help") | Some("--help") | Some("-h") | None => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("error: unknown command `{other}`\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Minimal flag parser: `--name value` pairs plus boolean switches.
struct Flags<'a> {
    args: &'a [String],
}

impl<'a> Flags<'a> {
    fn value(&self, name: &str) -> Option<&'a str> {
        self.args
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.args.get(i + 1))
            .map(String::as_str)
    }

    fn switch(&self, name: &str) -> bool {
        self.args.iter().any(|a| a == name)
    }

    fn parse<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String>
    where
        T::Err: std::fmt::Display,
    {
        self.value(name)
            .map(|v| v.parse().map_err(|e| format!("bad {name}: {e}")))
            .transpose()
    }
}

fn build_config(flags: &Flags) -> Result<VerroConfig, CliError> {
    let mut cfg = VerroConfig::default();
    let flip = flags.parse::<f64>("--flip").map_err(CliError::Usage)?;
    let eps = flags.parse::<f64>("--epsilon").map_err(CliError::Usage)?;
    match (flip, eps) {
        (Some(_), Some(_)) => {
            return Err(CliError::Usage("--flip and --epsilon are exclusive".into()))
        }
        (Some(f), None) => cfg = cfg.with_flip(f),
        (None, Some(e)) => cfg = cfg.with_epsilon(e),
        (None, None) => cfg = cfg.with_flip(0.1),
    }
    if let Some(seed) = flags.parse::<u64>("--seed").map_err(CliError::Usage)? {
        cfg = cfg.with_seed(seed);
    }
    if flags.switch("--fast") {
        cfg.background = BackgroundMode::TemporalMedian;
    }
    if let Some(mib) = flags
        .parse::<usize>("--cache-budget")
        .map_err(CliError::Usage)?
    {
        cfg = cfg.with_cache_budget(mib.saturating_mul(1024 * 1024));
    }
    if let Some(mode) = flags.value("--kernels") {
        let mode = KernelMode::parse(mode).ok_or_else(|| {
            CliError::Usage(format!(
                "--kernels must be auto, scalar, or simd (got `{mode}`)"
            ))
        })?;
        cfg = cfg.with_kernels(mode);
    }
    if let Some(mode) = flags.value("--fingerprint") {
        let mode = FingerprintMode::parse(mode).ok_or_else(|| {
            CliError::Usage(format!("--fingerprint must be auto or off (got `{mode}`)"))
        })?;
        cfg.keyframe.fingerprint = mode;
    }
    cfg.validate()
        .map_err(|msg| CliError::Pipeline(VerroError::BadConfig(msg)))?;
    Ok(cfg)
}

/// Recovery policy from the `--max-retries` / `--on-corrupt` flags.
fn build_policy(flags: &Flags) -> Result<RecoveryPolicy, CliError> {
    let mut policy = RecoveryPolicy::default();
    if let Some(n) = flags
        .parse::<u32>("--max-retries")
        .map_err(CliError::Usage)?
    {
        policy.max_retries = n;
    }
    if let Some(action) = flags
        .parse::<CorruptAction>("--on-corrupt")
        .map_err(CliError::Usage)?
    {
        policy.on_corrupt = action;
    }
    Ok(policy)
}

/// Fault-injection schedule from `--inject-faults` / `--fault-rate` /
/// `--fault-seed`; `None` when injection is off.
fn fault_schedule(flags: &Flags) -> Result<Option<FaultSchedule>, CliError> {
    if !flags.switch("--inject-faults") {
        return Ok(None);
    }
    let rate = flags
        .parse::<f64>("--fault-rate")
        .map_err(CliError::Usage)?
        .unwrap_or(0.15);
    if !(0.0..=1.0).contains(&rate) {
        return Err(CliError::Usage("--fault-rate must be in [0, 1]".into()));
    }
    let seed = flags
        .parse::<u64>("--fault-seed")
        .map_err(CliError::Usage)?
        .unwrap_or(1);
    Ok(Some(FaultSchedule::mixed(seed, rate)))
}

fn load_frames(dir: &Path) -> Result<InMemoryVideo, CliError> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| CliError::Data(format!("cannot read {}: {e}", dir.display())))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "ppm"))
        .collect();
    if paths.is_empty() {
        return Err(CliError::Data(format!(
            "no .ppm frames in {}",
            dir.display()
        )));
    }
    paths.sort();
    let mut frames = Vec::with_capacity(paths.len());
    for p in &paths {
        let bytes =
            std::fs::read(p).map_err(|e| CliError::Data(format!("{}: {e}", p.display())))?;
        frames.push(
            ImageBuffer::from_ppm(&bytes)
                .map_err(|e| CliError::Data(format!("{}: {e}", p.display())))?,
        );
    }
    InMemoryVideo::try_new(frames, 30.0).map_err(|e| CliError::Data(e.to_string()))
}

/// Writes the sanitized frames, annotations, privacy statement, and the
/// `phase1.json` query artifact (the randomized presence vectors plus the ε
/// parameters `verro query` needs to answer DP analytics later).
/// Returns the result's timings with the writer-side `render` / `encode`
/// fields filled in (frame rendering is frame-parallel; encoding reuses one
/// pooled PPM scratch buffer across frames).
fn write_outputs(
    out: &Path,
    result: &verro_core::SanitizedResult,
    annotations: &VideoAnnotations,
    stream: &str,
    fps: f64,
) -> Result<verro_core::PhaseTimings, CliError> {
    use std::time::Instant;
    use verro_video::BufferPool;
    std::fs::create_dir_all(out)
        .map_err(|e| CliError::Data(format!("cannot create {}: {e}", out.display())))?;
    let t_render = Instant::now();
    let frames = result.video.render_all();
    let mut timings = result.timings;
    timings.render = t_render.elapsed();
    let size = FrameSource::frame_size(&result.video);
    let pool = BufferPool::new();
    let mut ppm = pool.acquire((size.width as usize) * (size.height as usize) * 3 + 32);
    let t_encode = Instant::now();
    for (k, frame) in frames.iter().enumerate() {
        frame.write_ppm_into(&mut ppm);
        let path = out.join(format!("{k:06}.ppm"));
        std::fs::write(&path, &ppm[..])
            .map_err(|e| CliError::Data(format!("{}: {e}", path.display())))?;
    }
    timings.encode = t_encode.elapsed();
    drop(ppm);
    std::fs::write(
        out.join("synthetic_gt.txt"),
        result.phase2.synthetic.to_mot_text(),
    )
    .map_err(|e| CliError::Data(e.to_string()))?;
    let statement = serde_json::json!({
        "privacy": result.privacy,
        "utility": result.utility,
        "picked_key_frames": result.phase1.picked_frames,
        "fps": fps,
        "health": {
            "summary": result.health.summary(),
            "degraded": result.health.is_degraded(),
            "frames": result.health.num_frames(),
            "ok": result.health.num_ok(),
            "retried": result.health.num_retried(),
            "repaired": result.health.num_repaired(),
            "skipped": result.health.num_skipped(),
            "skipped_frames": result.health.skipped_frames(),
            "total_retries": result.health.total_retries,
            "total_backoff_ms": result.health.total_backoff_ms,
        },
        "timings_secs": {
            "preprocess": timings.preprocess.as_secs_f64(),
            "preprocess_keyframes": timings.preprocess_keyframes.as_secs_f64(),
            "preprocess_backgrounds": timings.preprocess_backgrounds.as_secs_f64(),
            "preprocess_detect_track": timings.preprocess_detect_track.as_secs_f64(),
            "phase1": timings.phase1.as_secs_f64(),
            "phase2": timings.phase2.as_secs_f64(),
            "render": timings.render.as_secs_f64(),
            "encode": timings.encode.as_secs_f64(),
        },
    });
    let statement_json = serde_json::to_string_pretty(&statement)
        .map_err(|e| CliError::Data(format!("cannot serialize privacy statement: {e}")))?;
    std::fs::write(out.join("privacy.json"), statement_json)
        .map_err(|e| CliError::Data(e.to_string()))?;
    let artifact = QueryArtifact::from_run(stream, &result.phase1, &result.privacy, annotations)?;
    artifact.save(&out.join("phase1.json"))?;
    Ok(timings)
}

/// Runs the configured sanitization over any fallible source (infallible
/// videos pass through the blanket `TryFrameSource` impl unchanged).
/// Also returns the annotations the pipeline actually ran on (tracked or
/// owner-supplied) so the query artifact can label objects by class.
fn run_sanitize<S: TryFrameSource + Sync>(
    verro: &Verro,
    src: &S,
    annotations: Option<&VideoAnnotations>,
    track: bool,
    policy: RecoveryPolicy,
) -> Result<(verro_core::SanitizedResult, VideoAnnotations), CliError> {
    if track || annotations.is_none() {
        eprintln!("running detector + tracker ...");
        let (result, tracked) = verro.sanitize_with_tracking_fallible(
            src,
            &DetectorConfig::default(),
            TrackerConfig::default(),
            ObjectClass::Pedestrian,
            policy,
        )?;
        eprintln!("tracked {} objects", tracked.num_objects());
        Ok((result, tracked))
    } else {
        let ann = annotations.expect("checked above");
        Ok((verro.sanitize_fallible(src, ann, policy)?, ann.clone()))
    }
}

fn cmd_sanitize(args: &[String]) -> Result<(), CliError> {
    let flags = Flags { args };
    let frames_dir = PathBuf::from(
        flags
            .value("--frames")
            .ok_or_else(|| CliError::Usage("missing --frames <DIR>; see `verro help`".into()))?,
    );
    let out = PathBuf::from(
        flags
            .value("--out")
            .ok_or_else(|| CliError::Usage("missing --out <DIR>".into()))?,
    );
    let fps: f64 = flags
        .parse("--fps")
        .map_err(CliError::Usage)?
        .unwrap_or(30.0);
    let config = build_config(&flags)?;
    // Validate every flag (usage errors, exit 2) before touching the
    // filesystem: a typo in --on-corrupt must not masquerade as bad data.
    let policy = build_policy(&flags)?;
    let schedule = fault_schedule(&flags)?;
    let verro = Verro::new(config)?;

    eprintln!("loading frames from {} ...", frames_dir.display());
    let video = load_frames(&frames_dir)?;
    eprintln!(
        "loaded {} frames at {}",
        FrameSource::num_frames(&video),
        FrameSource::frame_size(&video)
    );

    let annotations = match flags.value("--gt") {
        Some(gt_path) => {
            let text = std::fs::read_to_string(gt_path)
                .map_err(|e| CliError::Data(format!("{gt_path}: {e}")))?;
            let ann = VideoAnnotations::from_mot_text(&text, FrameSource::num_frames(&video))
                .map_err(CliError::Data)?;
            eprintln!("loaded {} annotated objects", ann.num_objects());
            Some(ann)
        }
        None => None,
    };
    let track = annotations.is_none() || flags.switch("--track");

    let (result, used_annotations) = match schedule {
        Some(schedule) => {
            eprintln!(
                "injecting faults (seed {}, transient rate {:.2}) ...",
                schedule.seed, schedule.transient_rate
            );
            let faulty = FaultySource::new(video, schedule);
            run_sanitize(&verro, &faulty, annotations.as_ref(), track, policy)?
        }
        None => run_sanitize(&verro, &video, annotations.as_ref(), track, policy)?,
    };

    let stream = frames_dir
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "sanitize".into());
    let t = write_outputs(&out, &result, &used_annotations, &stream, fps)?;
    if result.health.is_degraded() {
        eprintln!("source health: {}", result.health.summary());
    }
    eprintln!(
        "timings: preprocess {:.3}s (keyframes {:.3}s, backgrounds {:.3}s, detect+track {:.3}s), phase1 {:.3}s, phase2 {:.3}s, render {:.3}s, encode {:.3}s",
        t.preprocess.as_secs_f64(),
        t.preprocess_keyframes.as_secs_f64(),
        t.preprocess_backgrounds.as_secs_f64(),
        t.preprocess_detect_track.as_secs_f64(),
        t.phase1.as_secs_f64(),
        t.phase2.as_secs_f64(),
        t.render.as_secs_f64(),
        t.encode.as_secs_f64(),
    );
    eprintln!(
        "done: {} synthetic objects, epsilon_RR = {:.2} over {} picked key frames -> {}",
        result.utility.retained_objects,
        result.privacy.epsilon_rr,
        result.privacy.picked_frames,
        out.display()
    );
    Ok(())
}

/// A lazy PPM-directory source for `verro stream`: frames are read and
/// decoded on demand, one at a time, so residency is governed by the
/// streaming budget instead of the clip length. Real I/O failures surface
/// as typed [`SourceError`]s and flow through the recovery policy exactly
/// like injected ones: an unreadable file is `Missing`, a malformed or
/// wrong-sized raster is `Corrupt` over the full frame.
struct PpmDirSource {
    paths: Vec<PathBuf>,
    size: Size,
    fps: f64,
}

impl PpmDirSource {
    fn open(dir: &Path, fps: f64) -> Result<Self, CliError> {
        let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
            .map_err(|e| CliError::Data(format!("cannot read {}: {e}", dir.display())))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "ppm"))
            .collect();
        if paths.is_empty() {
            return Err(CliError::Data(format!(
                "no .ppm frames in {}",
                dir.display()
            )));
        }
        paths.sort();
        // The first frame pins the stream geometry; later frames that
        // disagree are reported as corrupt, not trusted.
        let bytes = std::fs::read(&paths[0])
            .map_err(|e| CliError::Data(format!("{}: {e}", paths[0].display())))?;
        let first = ImageBuffer::from_ppm(&bytes)
            .map_err(|e| CliError::Data(format!("{}: {e}", paths[0].display())))?;
        Ok(Self {
            paths,
            size: first.size(),
            fps,
        })
    }
}

impl TryFrameSource for PpmDirSource {
    fn num_frames(&self) -> usize {
        self.paths.len()
    }

    fn frame_size(&self) -> Size {
        self.size
    }

    fn fps(&self) -> f64 {
        self.fps
    }

    fn try_frame(&self, k: usize, _attempt: u32) -> Result<ImageBuffer, SourceError> {
        let Some(path) = self.paths.get(k) else {
            return Err(SourceError::Missing { frame: k });
        };
        let bytes = std::fs::read(path).map_err(|_| SourceError::Missing { frame: k })?;
        let img = ImageBuffer::from_ppm(&bytes).map_err(|_| SourceError::Corrupt {
            frame: k,
            region: PixelRect::full(self.size),
        })?;
        if img.size() != self.size {
            return Err(SourceError::Corrupt {
                frame: k,
                region: PixelRect::full(self.size),
            });
        }
        Ok(img)
    }
}

/// One stream's input for `verro stream`.
enum StreamInput {
    /// A directory of PPM frames with owner-supplied annotations.
    Dir { dir: PathBuf, gt: PathBuf },
    /// A generated demo clip (annotations built in).
    Demo { seed: u64 },
}

/// What `cmd_stream` prints per stream after the threads join.
struct StreamSummary {
    label: String,
    frames: usize,
    segments: usize,
    epsilon_rr: f64,
    picked_frames: usize,
    peak_raster_bytes: usize,
    health_degraded: bool,
    health_summary: String,
    supervisor: SupervisorReport,
    resumed_segments: usize,
    committed_segments: usize,
    total_segments: usize,
    interrupted: bool,
    sink_health: SinkHealth,
    /// `Some(canonical)` when `--dedup-streams` aliased this stream to an
    /// earlier identical input instead of sanitizing it again.
    duplicate_of: Option<String>,
}

/// The CLI's [`SegmentSink`]: every frame is committed atomically
/// (write-tmp → fsync → rename) by [`PpmDirSink`], optionally behind the
/// deterministic sink-fault injector, with retryable faults absorbed by
/// [`RecoveringSink`] under the stream's recovery policy (backoff recorded,
/// never slept). Per-frame durability is what lets `commit_segment` stay a
/// no-op: by the time the journal records a segment, every frame in it has
/// already survived its rename.
struct CliStreamSink {
    sink: RecoveringSink<FaultySink<PpmDirSink>>,
}

impl CliStreamSink {
    fn create(
        dir: &Path,
        schedule: SinkFaultSchedule,
        policy: RecoveryPolicy,
    ) -> Result<Self, CliError> {
        let ppm = PpmDirSink::create(dir)
            .map_err(|e| CliError::Data(format!("cannot create {}: {e}", dir.display())))?;
        Ok(Self {
            sink: RecoveringSink::new(FaultySink::new(ppm, schedule), policy),
        })
    }

    fn health(&self) -> SinkHealth {
        self.sink.health()
    }
}

impl SegmentSink for CliStreamSink {
    fn put(&mut self, k: usize, frame: &ImageBuffer) -> Result<(), VerroError> {
        self.sink.put(k, frame).map_err(|e| VerroError::SinkFailed {
            frame: e.frame(),
            reason: e.to_string(),
        })
    }

    fn persisted_fingerprint(&mut self, d0: usize, d1: usize) -> Result<u64, VerroError> {
        let mut fp = fnv1a_seed();
        for k in d0..=d1 {
            let img =
                self.sink
                    .inner()
                    .inner()
                    .read_frame(k)
                    .map_err(|e| VerroError::SinkFailed {
                        frame: k,
                        reason: format!("cannot read back persisted frame: {e}"),
                    })?;
            fp = frame_fold(fp, k, &img);
        }
        Ok(fp)
    }
}

/// Runs one stream end to end under supervision: frames stream from `src`
/// through the checkpointed stage graph, every rendered `V*` frame is
/// committed atomically the moment it leaves the render stage, every
/// finished segment is journaled, and the stall watchdog restarts a hung
/// attempt from that journal. Even when the run drains on an interrupt the
/// manifest written here is complete and valid — it just carries
/// `interrupted: true` and fewer committed segments.
#[allow(clippy::too_many_arguments)]
fn run_stream<S: TryFrameSource + Sync>(
    label: &str,
    verro: &Verro,
    src: &S,
    annotations: &VideoAnnotations,
    policy: RecoveryPolicy,
    options: &verro_core::StreamOptions,
    out: &Path,
    sup_policy: SupervisorPolicy,
    sink_schedule: SinkFaultSchedule,
    cli_resume: bool,
    interrupt: &CancelToken,
) -> Result<StreamSummary, CliError> {
    std::fs::create_dir_all(out)
        .map_err(|e| CliError::Data(format!("cannot create {}: {e}", out.display())))?;
    let journal_path = out.join("run.journal");
    if cli_resume && !journal_path.exists() {
        return Err(CliError::Data(format!(
            "--resume: no run.journal in {} (was this directory written by `verro stream`?)",
            out.display()
        )));
    }
    let fps = src.fps();
    let mut sink = CliStreamSink::create(out, sink_schedule, policy)?;
    let (sup, engine) = supervise(label, &sup_policy, |attempt, hb, cancel| {
        let ckpt = CheckpointOptions {
            journal_path: journal_path.clone(),
            // A stall restart resumes from whatever the previous attempt
            // journaled; the first attempt resumes only when the operator
            // asked to.
            resume: cli_resume || (attempt > 0 && journal_path.exists()),
            cancel: cancel.clone(),
            interrupt: interrupt.clone(),
            heartbeat: hb.clone(),
        };
        verro.sanitize_streaming_checkpointed(src, annotations, policy, options, &ckpt, &mut sink)
    });
    let ckpt = engine.map_err(CliError::Pipeline)?;
    let result = &ckpt.output;
    let sink_health = sink.health();
    std::fs::write(
        out.join("synthetic_gt.txt"),
        result.phase2.synthetic.to_mot_text(),
    )
    .map_err(|e| CliError::Data(e.to_string()))?;
    let statement = serde_json::json!({
        "stream": label,
        "privacy": result.privacy,
        "utility": result.utility,
        "picked_key_frames": result.phase1.picked_frames,
        "fps": fps,
        "health": {
            "summary": result.health.summary(),
            "degraded": result.health.is_degraded(),
            "frames": result.health.num_frames(),
            "ok": result.health.num_ok(),
            "retried": result.health.num_retried(),
            "repaired": result.health.num_repaired(),
            "skipped": result.health.num_skipped(),
            "skipped_frames": result.health.skipped_frames(),
            "total_retries": result.health.total_retries,
            "total_backoff_ms": result.health.total_backoff_ms,
        },
        "supervisor": {
            "restarts": sup.restarts,
            "stalls": sup.stalls,
            "panics": sup.panics,
            "backoff_ms": sup.backoff_ms,
            "resumed_segments": ckpt.resumed_segments,
            "committed_segments": ckpt.committed_segments,
            "total_segments": ckpt.total_segments,
            "interrupted": ckpt.interrupted,
            "sink": {
                "frames": sink_health.frames,
                "retried": sink_health.retried,
                "total_retries": sink_health.total_retries,
                "total_backoff_ms": sink_health.total_backoff_ms,
            },
        },
        "stream_stats": {
            "frames": result.stats.frames,
            "segments": result.stats.segments,
            "frame_bytes": result.stats.frame_bytes,
            "memory_budget": result.stats.memory_budget,
            "render_slots": result.stats.render_slots,
            "cache_budget": result.stats.cache_budget,
            "peak_raster_bytes": result.stats.peak_raster_bytes,
            "cache_peak_bytes": result.stats.cache.peak_bytes,
            "segment_render_ms": result.stats.segment_render_ms,
            "prefilter": {
                "sampled": result.stats.prefilter.sampled,
                "computed": result.stats.prefilter.computed,
                "reused": result.stats.prefilter.reused,
            },
        },
        "timings_secs": {
            "preprocess": result.timings.preprocess.as_secs_f64(),
            "phase1": result.timings.phase1.as_secs_f64(),
            "phase2": result.timings.phase2.as_secs_f64(),
            "render": result.timings.render.as_secs_f64(),
        },
    });
    let statement_json = serde_json::to_string_pretty(&statement)
        .map_err(|e| CliError::Data(format!("cannot serialize privacy statement: {e}")))?;
    std::fs::write(out.join("privacy.json"), statement_json)
        .map_err(|e| CliError::Data(e.to_string()))?;
    let artifact = QueryArtifact::from_run(label, &result.phase1, &result.privacy, annotations)?;
    artifact.save(&out.join("phase1.json"))?;
    Ok(StreamSummary {
        label: label.to_string(),
        frames: result.stats.frames,
        segments: result.stats.segments,
        epsilon_rr: result.privacy.epsilon_rr,
        picked_frames: result.privacy.picked_frames,
        peak_raster_bytes: result.stats.peak_raster_bytes,
        health_degraded: result.health.is_degraded(),
        health_summary: result.health.summary(),
        supervisor: sup,
        resumed_segments: ckpt.resumed_segments,
        committed_segments: ckpt.committed_segments,
        total_segments: ckpt.total_segments,
        interrupted: ckpt.interrupted,
        sink_health,
        duplicate_of: None,
    })
}

/// The `--dedup-streams` alias path: the stream was a near-duplicate of an
/// earlier canonical input, so nothing is sanitized and no ε is charged.
/// Its output directory gets a small `privacy.json` naming the canonical
/// stream (whose artifacts hold the actual release and its ε accounting).
fn write_dedup_alias(
    label: &str,
    canonical: &str,
    shift: isize,
    mean_distance: f64,
    out: &Path,
) -> Result<StreamSummary, CliError> {
    std::fs::create_dir_all(out)
        .map_err(|e| CliError::Data(format!("cannot create {}: {e}", out.display())))?;
    let statement = serde_json::json!({
        "stream": label,
        "duplicate_of": canonical,
        "dedup": {
            "shift": shift,
            "mean_distance": mean_distance,
        },
        "epsilon_charged": 0.0,
        "note": "near-duplicate of the canonical stream; see its output \
                 directory for the sanitized frames, privacy statement, and \
                 epsilon accounting (charged exactly once per canonical \
                 stream)",
    });
    let statement_json = serde_json::to_string_pretty(&statement)
        .map_err(|e| CliError::Data(format!("cannot serialize alias statement: {e}")))?;
    std::fs::write(out.join("privacy.json"), statement_json)
        .map_err(|e| CliError::Data(e.to_string()))?;
    Ok(StreamSummary {
        label: label.to_string(),
        frames: 0,
        segments: 0,
        epsilon_rr: 0.0,
        picked_frames: 0,
        peak_raster_bytes: 0,
        health_degraded: false,
        health_summary: String::new(),
        supervisor: SupervisorReport::default(),
        resumed_segments: 0,
        committed_segments: 0,
        total_segments: 0,
        interrupted: false,
        sink_health: SinkHealth::default(),
        duplicate_of: Some(canonical.to_string()),
    })
}

/// The demo clip used for `verro stream --demo`: the `verro demo` scene
/// with a per-stream generator seed so concurrent streams carry distinct
/// objects.
fn demo_stream_video(seed: u64) -> verro_video::generator::GeneratedVideo {
    use verro_video::generator::{GeneratedVideo, VideoSpec};
    use verro_video::{Camera, SceneKind};
    GeneratedVideo::generate(VideoSpec {
        name: format!("demo-stream-{seed}"),
        nominal_size: Size::new(320, 240),
        raster_scale: 1.0,
        num_frames: 60,
        num_objects: 8,
        scene: SceneKind::DaySquare,
        camera: Camera::Static,
        class: ObjectClass::Pedestrian,
        fps: 30.0,
        seed,
        min_lifetime: 20,
        max_lifetime: 50,
        lifetime_mix: None,
        lighting_drift: 0.1,
        lighting_period: 15.0,
    })
}

fn cmd_stream(args: &[String]) -> Result<(), CliError> {
    let flags = Flags { args };
    let (out_root, cli_resume) = match (flags.value("--out"), flags.value("--resume")) {
        (Some(_), Some(_)) => {
            return Err(CliError::Usage("--out and --resume are exclusive".into()))
        }
        (Some(out), None) => (PathBuf::from(out), false),
        (None, Some(dir)) => (PathBuf::from(dir), true),
        (None, None) => return Err(CliError::Usage("missing --out <DIR>".into())),
    };
    let mut config = build_config(&flags)?;
    if let Some(mib) = flags
        .parse::<usize>("--stream-budget")
        .map_err(CliError::Usage)?
    {
        config = config.with_stream_budget(mib.saturating_mul(1024 * 1024));
        config
            .validate()
            .map_err(|msg| CliError::Pipeline(VerroError::BadConfig(msg)))?;
    }
    let policy = build_policy(&flags)?;
    let schedule = fault_schedule(&flags)?;
    let mut options = verro_core::StreamOptions::default();
    if let Some(chunk) = flags.parse::<usize>("--chunk").map_err(CliError::Usage)? {
        if chunk == 0 {
            return Err(CliError::Usage("--chunk must be positive".into()));
        }
        options.chunk_size = chunk;
    }
    let fps: f64 = flags
        .parse("--fps")
        .map_err(CliError::Usage)?
        .unwrap_or(30.0);
    let stall_secs: f64 = flags
        .parse("--stall-timeout")
        .map_err(CliError::Usage)?
        .unwrap_or(0.0);
    if !stall_secs.is_finite() || stall_secs < 0.0 {
        return Err(CliError::Usage(
            "--stall-timeout must be a non-negative number of seconds".into(),
        ));
    }
    let sup_policy = SupervisorPolicy {
        stall_timeout_ms: (stall_secs * 1000.0) as u64,
        max_restarts: flags
            .parse::<u32>("--max-restarts")
            .map_err(CliError::Usage)?
            .unwrap_or(2),
        ..SupervisorPolicy::default()
    };
    let inject_sink = flags.switch("--inject-sink-faults");
    let sink_rate: f64 = flags
        .parse("--sink-fault-rate")
        .map_err(CliError::Usage)?
        .unwrap_or(0.15);
    let sink_seed: u64 = flags
        .parse("--sink-fault-seed")
        .map_err(CliError::Usage)?
        .unwrap_or(1);
    if inject_sink && !(0.0..=1.0).contains(&sink_rate) {
        return Err(CliError::Usage(
            "--sink-fault-rate must be in [0, 1]".into(),
        ));
    }

    let inputs: Vec<(String, StreamInput)> = match (
        flags.value("--frames"),
        flags.parse::<usize>("--demo").map_err(CliError::Usage)?,
    ) {
        (Some(_), Some(_)) => {
            return Err(CliError::Usage("--frames and --demo are exclusive".into()))
        }
        (Some(dirs), None) => {
            if schedule.is_some() {
                return Err(CliError::Usage(
                    "--inject-faults needs --demo; file streams carry real I/O faults".into(),
                ));
            }
            let dirs: Vec<&str> = dirs.split(',').filter(|d| !d.is_empty()).collect();
            let gts: Vec<&str> = flags
                .value("--gt")
                .ok_or_else(|| {
                    CliError::Usage(
                        "streaming needs --gt <FILE>[,<FILE>...]; the detector+tracker \
                         path is batch-only (`verro sanitize`)"
                            .into(),
                    )
                })?
                .split(',')
                .filter(|g| !g.is_empty())
                .collect();
            if dirs.is_empty() {
                return Err(CliError::Usage("--frames lists no directories".into()));
            }
            if gts.len() != dirs.len() {
                return Err(CliError::Usage(format!(
                    "--gt lists {} files for {} frame directories",
                    gts.len(),
                    dirs.len()
                )));
            }
            dirs.iter()
                .zip(&gts)
                .map(|(d, g)| {
                    (
                        d.to_string(),
                        StreamInput::Dir {
                            dir: PathBuf::from(d),
                            gt: PathBuf::from(g),
                        },
                    )
                })
                .collect()
        }
        (None, Some(n)) => {
            if n == 0 {
                return Err(CliError::Usage("--demo needs at least one stream".into()));
            }
            (0..n)
                .map(|i| {
                    (
                        format!("demo-{i}"),
                        StreamInput::Demo { seed: 1 + i as u64 },
                    )
                })
                .collect()
        }
        (None, None) => {
            return Err(CliError::Usage(
                "missing --frames <DIR>[,<DIR>...] or --demo <N>; see `verro help`".into(),
            ))
        }
    };

    // --dedup-streams: probe every input up front, in input order, so the
    // first stream of each duplicate group becomes canonical. The registry
    // only routes work — canonical and non-duplicate streams then run the
    // exact pipeline a dedup-off invocation would, so their published bytes
    // and privacy statements cannot differ; only aliased duplicates are
    // skipped (and their ε is never charged).
    let verdicts: Vec<Option<DedupVerdict>> = if flags.switch("--dedup-streams") {
        let dedup_cfg = DedupConfig::default();
        let mut registry = DedupRegistry::new(dedup_cfg);
        let stride = config.keyframe.stride;
        inputs
            .iter()
            .map(|(label, input)| {
                let signature = match input {
                    StreamInput::Dir { dir, .. } => match PpmDirSource::open(dir, fps) {
                        Ok(src) => StreamSignature::probe(&src, dedup_cfg.window, stride),
                        // An unreadable input yields an empty probe, which
                        // the overlap gate keeps canonical; its stream
                        // thread then reports the real error.
                        Err(_) => StreamSignature {
                            fingerprints: Vec::new(),
                        },
                    },
                    StreamInput::Demo { seed } => {
                        StreamSignature::probe(&demo_stream_video(*seed), dedup_cfg.window, stride)
                    }
                };
                Some(registry.claim(label, signature))
            })
            .collect()
    } else {
        inputs.iter().map(|_| None).collect()
    };

    let verro = Verro::new(config)?;
    let single = inputs.len() == 1;
    eprintln!(
        "streaming {} source(s), budget {} MiB per stream ...",
        inputs.len(),
        verro.config().stream_memory_budget / (1024 * 1024)
    );

    // SIGINT drains at the next segment boundary: the handler flips a flag,
    // a monitor thread fans it out to every stream's interrupt token, and
    // each stream commits its journal and writes a valid partial manifest
    // before exiting with code 6.
    sigint::install();
    let interrupt = CancelToken::default();

    // One OS thread per stream: the engine's own stages subdivide further,
    // and the bounded channels keep every stream under its own ceiling.
    let done = AtomicBool::new(false);
    let results: Vec<Result<StreamSummary, CliError>> = std::thread::scope(|scope| {
        let done = &done;
        let monitor_interrupt = interrupt.clone();
        scope.spawn(move || {
            while !done.load(Ordering::Acquire) {
                if sigint::interrupted() {
                    monitor_interrupt.cancel();
                    return;
                }
                std::thread::sleep(Duration::from_millis(25));
            }
        });
        let handles: Vec<_> = inputs
            .iter()
            .enumerate()
            .map(|(i, (label, input))| {
                let verro = &verro;
                let options = &options;
                let interrupt = &interrupt;
                let out = if single {
                    out_root.clone()
                } else {
                    out_root.join(format!("stream{i}"))
                };
                let sink_schedule = if inject_sink {
                    SinkFaultSchedule::mixed(sink_seed.wrapping_add(i as u64), sink_rate)
                } else {
                    SinkFaultSchedule::clean(0)
                };
                let verdict = &verdicts[i];
                scope.spawn(move || -> Result<StreamSummary, CliError> {
                    if let Some(DedupVerdict::DuplicateOf {
                        canonical,
                        shift,
                        mean_distance,
                    }) = verdict
                    {
                        return write_dedup_alias(label, canonical, *shift, *mean_distance, &out);
                    }
                    match input {
                        StreamInput::Dir { dir, gt } => {
                            let src = PpmDirSource::open(dir, fps)?;
                            let text = std::fs::read_to_string(gt)
                                .map_err(|e| CliError::Data(format!("{}: {e}", gt.display())))?;
                            let ann = VideoAnnotations::from_mot_text(&text, src.num_frames())
                                .map_err(CliError::Data)?;
                            run_stream(
                                label,
                                verro,
                                &src,
                                &ann,
                                policy,
                                options,
                                &out,
                                sup_policy,
                                sink_schedule,
                                cli_resume,
                                interrupt,
                            )
                        }
                        StreamInput::Demo { seed } => {
                            let video = demo_stream_video(*seed);
                            let ann = video.annotations().clone();
                            match schedule {
                                Some(schedule) => {
                                    let faulty = FaultySource::new(video, schedule);
                                    run_stream(
                                        label,
                                        verro,
                                        &faulty,
                                        &ann,
                                        policy,
                                        options,
                                        &out,
                                        sup_policy,
                                        sink_schedule,
                                        cli_resume,
                                        interrupt,
                                    )
                                }
                                None => run_stream(
                                    label,
                                    verro,
                                    &video,
                                    &ann,
                                    policy,
                                    options,
                                    &out,
                                    sup_policy,
                                    sink_schedule,
                                    cli_resume,
                                    interrupt,
                                ),
                            }
                        }
                    }
                })
            })
            .collect();
        // A panicked stream thread must not take its siblings down with it:
        // surface the payload as a typed failure and let the rest finish.
        let results = handles
            .into_iter()
            .enumerate()
            .map(|(i, h)| {
                h.join().unwrap_or_else(|payload| {
                    let reason = if let Some(s) = payload.downcast_ref::<&str>() {
                        (*s).to_string()
                    } else if let Some(s) = payload.downcast_ref::<String>() {
                        s.clone()
                    } else {
                        "non-string panic payload".to_string()
                    };
                    Err(CliError::Pipeline(VerroError::StreamFailed {
                        stream: format!("stream{i}"),
                        reason,
                    }))
                })
            })
            .collect();
        done.store(true, Ordering::Release);
        results
    });

    let mut first_err: Option<CliError> = None;
    let mut any_interrupted = false;
    for (i, result) in results.into_iter().enumerate() {
        match result {
            Ok(s) => {
                if let Some(canonical) = &s.duplicate_of {
                    eprintln!(
                        "stream {i} ({}): near-duplicate of `{canonical}` — not sanitized, \
                         no epsilon charged; alias recorded in its privacy.json",
                        s.label
                    );
                    continue;
                }
                any_interrupted |= s.interrupted;
                let mut extras = String::new();
                if s.health_degraded {
                    extras.push_str(&format!("; health: {}", s.health_summary));
                }
                if s.supervisor.restarts > 0 || s.supervisor.stalls > 0 {
                    extras.push_str(&format!(
                        "; supervisor: {} stall(s), {} restart(s), {} ms recorded backoff",
                        s.supervisor.stalls, s.supervisor.restarts, s.supervisor.backoff_ms
                    ));
                }
                if s.resumed_segments > 0 {
                    extras.push_str(&format!(
                        "; resumed {} already-committed segment(s)",
                        s.resumed_segments
                    ));
                }
                if s.sink_health.retried > 0 {
                    extras.push_str(&format!(
                        "; sink: {} frame(s) retried over {} fault(s)",
                        s.sink_health.retried, s.sink_health.total_retries
                    ));
                }
                if s.interrupted {
                    extras.push_str(&format!(
                        "; interrupted: {} of {} segments committed",
                        s.committed_segments + s.resumed_segments,
                        s.total_segments
                    ));
                }
                eprintln!(
                    "stream {i} ({}): {} frames in {} segments, epsilon_RR = {:.2} over {} \
                     picked key frames, peak raster {} KiB{}",
                    s.label,
                    s.frames,
                    s.segments,
                    s.epsilon_rr,
                    s.picked_frames,
                    s.peak_raster_bytes / 1024,
                    extras
                );
            }
            Err(e) => {
                eprintln!("stream {i} failed: {e}");
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
    }
    match first_err {
        Some(e) => Err(e),
        None if any_interrupted => Err(CliError::Interrupted(format!(
            "committed segments are journaled; resume with `verro stream --resume {}`",
            out_root.display()
        ))),
        None => {
            eprintln!("done -> {}", out_root.display());
            Ok(())
        }
    }
}

/// Answers one DP analytics query from a `phase1.json` artifact, charging
/// the tenant's ε-ledger. The answer JSON goes to stdout; budget exhaustion
/// is the documented exit code 5 with nothing charged.
fn cmd_query(args: &[String]) -> Result<(), CliError> {
    let flags = Flags { args };
    let artifact_path = PathBuf::from(flags.value("--artifact").ok_or_else(|| {
        CliError::Usage("missing --artifact <FILE> (the phase1.json of a run)".into())
    })?);
    let ledger_path = PathBuf::from(
        flags
            .value("--ledger")
            .ok_or_else(|| CliError::Usage("missing --ledger <FILE>".into()))?,
    );
    let tenant = flags
        .value("--tenant")
        .ok_or_else(|| CliError::Usage("missing --tenant <NAME>".into()))?;
    let kind = flags
        .value("--query")
        .ok_or_else(|| CliError::Usage("missing --query <count|duration|histogram>".into()))?;
    let confidence: f64 = flags
        .parse("--confidence")
        .map_err(CliError::Usage)?
        .unwrap_or(0.95);

    let lock_wait_ms: u64 = flags
        .parse("--lock-wait-ms")
        .map_err(CliError::Usage)?
        .unwrap_or(5000);

    let artifact = QueryArtifact::load(&artifact_path)?;
    let cap = match flags.parse::<f64>("--cap").map_err(CliError::Usage)? {
        Some(c) => c,
        None => 3.0 * artifact.epsilon_total(),
    };
    // Held for the whole read → charge → save window so a concurrent
    // `verro query` cannot interleave and lose this charge.
    let _lock = LedgerLock::acquire(&ledger_path, lock_wait_ms)?;
    let store = LedgerStore::open_or_create(&ledger_path, &artifact.stream, cap)?;
    let mut engine = QueryEngine::new(artifact, store)?;

    let answer = match kind {
        "count" => {
            let scope = match flags.value("--frames") {
                Some(list) => {
                    let mut positions = Vec::new();
                    for part in list.split(',').filter(|p| !p.is_empty()) {
                        positions.push(part.parse::<usize>().map_err(|e| {
                            CliError::Usage(format!("bad --frames entry `{part}`: {e}"))
                        })?);
                    }
                    QueryScope::Frames(positions)
                }
                None => QueryScope::All,
            };
            engine.count(tenant, &scope, confidence)?
        }
        "duration" => {
            let object: u32 = flags
                .parse("--object")
                .map_err(CliError::Usage)?
                .ok_or_else(|| CliError::Usage("duration queries need --object <ID>".into()))?;
            engine.duration(tenant, object, confidence)?
        }
        "histogram" => {
            if flags.value("--frames").is_some() || flags.value("--object").is_some() {
                return Err(CliError::Usage(
                    "histogram queries take no --frames/--object".into(),
                ));
            }
            engine.histogram(tenant, confidence)?
        }
        other => {
            return Err(CliError::Usage(format!(
                "--query must be count, duration, or histogram (got `{other}`)"
            )))
        }
    };

    println!("{}", answer.to_json().pretty());
    eprintln!(
        "charged epsilon {:.4} to tenant `{tenant}` ({:.4} of {:.4} spent, {:.4} remaining) -> {}",
        answer.epsilon_charged,
        answer.epsilon_spent,
        engine.store().cap(),
        answer.epsilon_remaining,
        ledger_path.display()
    );
    Ok(())
}

/// Runs the query-layer certification (`verro audit --queries`): estimator
/// unbiasedness and CI coverage over Monte-Carlo trials, plus the bit-exact
/// ε-accounting checks on a persistent ledger.
fn cmd_query_audit(flags: &Flags, seed: u64) -> Result<bool, CliError> {
    let config = build_config(flags)?;
    let mut opts = verro_audit::QueryAuditOptions::default();
    if let Some(trials) = flags.parse::<usize>("--trials").map_err(CliError::Usage)? {
        if trials == 0 {
            return Err(CliError::Usage("--trials must be positive".into()));
        }
        opts.trials = trials;
    }
    eprintln!(
        "certifying the query layer over {} trials (seed {seed}) ...",
        opts.trials
    );
    let report = verro_audit::run_query_audit(&config, seed, &opts)
        .map_err(|e| CliError::Data(e.to_string()))?;
    let json = report.to_json_pretty();
    println!("{json}");
    if let Some(path) = flags.value("--out") {
        std::fs::write(path, format!("{json}\n"))
            .map_err(|e| CliError::Data(format!("{path}: {e}")))?;
    }
    for check in &report.checks {
        eprintln!("check {:<34} {:?}", check.name, check.verdict);
    }
    eprintln!(
        "queries: {} trials at f = {}, charged eps {:.4} vs statement {:.4} ({})",
        report.trials,
        report.flip,
        report.epsilon_charged_full_scope,
        report.epsilon_statement_total,
        if report.epsilon_exact_match {
            "bit-exact"
        } else {
            "MISMATCH"
        }
    );
    Ok(report.all_pass)
}

/// Runs the empirical ε-audit and prints the deterministic JSON report.
/// Returns whether every check and every pair audit passed (drives the exit
/// code, so CI can gate on `verro audit`).
fn cmd_audit(args: &[String]) -> Result<bool, CliError> {
    let flags = Flags { args };
    let seed: u64 = flags.parse("--seed").map_err(CliError::Usage)?.unwrap_or(0);
    if flags.switch("--queries") {
        return cmd_query_audit(&flags, seed);
    }
    let config = build_config(&flags)?;
    let mut opts = verro_audit::AuditOptions::default();
    if let Some(trials) = flags.parse::<usize>("--trials").map_err(CliError::Usage)? {
        if trials == 0 {
            return Err(CliError::Usage("--trials must be positive".into()));
        }
        opts.mc.trials = trials;
    }
    eprintln!(
        "auditing phase 1 over {} trials (seed {seed}) ...",
        opts.mc.trials
    );
    let report =
        verro_audit::run_audit(&config, seed, &opts).map_err(|e| CliError::Data(e.to_string()))?;
    let json = report.to_json_pretty();
    println!("{json}");
    if let Some(path) = flags.value("--out") {
        std::fs::write(path, format!("{json}\n"))
            .map_err(|e| CliError::Data(format!("{path}: {e}")))?;
    }
    for check in &report.checks {
        eprintln!("check {:<26} {:?}", check.name, check.verdict);
    }
    let worst = report.mc.pairs.first();
    eprintln!(
        "mc: {} pairs on {}/{} trials, claim eps_total = {:.3} (+{:.3} slack), worst ucb = {:.3} -> {:?}",
        report.mc.pairs.len(),
        report.mc.trials_used,
        report.mc.trials,
        report.mc.epsilon_total,
        report.mc.slack,
        worst.map_or(0.0, |p| p.empirical_epsilon_ucb),
        report.mc.verdict
    );
    Ok(report.all_pass)
}

fn cmd_demo(args: &[String]) -> Result<(), CliError> {
    use verro_video::generator::{GeneratedVideo, VideoSpec};
    use verro_video::{Camera, SceneKind};
    let flags = Flags { args };
    let out = PathBuf::from(
        flags
            .value("--out")
            .ok_or_else(|| CliError::Usage("missing --out <DIR>".into()))?,
    );
    let mut config = build_config(&flags)?;
    config.background = BackgroundMode::TemporalMedian;

    let video = GeneratedVideo::generate(VideoSpec {
        name: "demo".into(),
        nominal_size: Size::new(320, 240),
        raster_scale: 1.0,
        num_frames: 60,
        num_objects: 8,
        scene: SceneKind::DaySquare,
        camera: Camera::Static,
        class: ObjectClass::Pedestrian,
        fps: 30.0,
        seed: 1,
        min_lifetime: 20,
        max_lifetime: 50,
        lifetime_mix: None,
        lighting_drift: 0.1,
        lighting_period: 15.0,
    });
    let verro = Verro::new(config)?;
    let policy = build_policy(&flags)?;
    let annotations = video.annotations().clone();
    let result = match fault_schedule(&flags)? {
        Some(schedule) => {
            eprintln!(
                "injecting faults (seed {}, transient rate {:.2}) ...",
                schedule.seed, schedule.transient_rate
            );
            let faulty = FaultySource::new(video, schedule);
            verro.sanitize_fallible(&faulty, &annotations, policy)?
        }
        None => verro.sanitize_fallible(&video, &annotations, policy)?,
    };
    let _ = write_outputs(&out, &result, &annotations, "demo", 30.0)?;
    if result.health.is_degraded() {
        eprintln!("source health: {}", result.health.summary());
    }
    eprintln!(
        "demo written to {} ({} frames, epsilon_RR = {:.2})",
        out.display(),
        FrameSource::num_frames(&result.video),
        result.privacy.epsilon_rr
    );
    Ok(())
}
