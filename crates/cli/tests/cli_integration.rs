//! End-to-end tests of the `verro` binary via its public CLI surface.

use std::path::Path;
use std::process::Command;

fn verro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_verro"))
}

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("verro-cli-test-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn help_prints_usage() {
    let out = verro().arg("help").output().expect("run");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("sanitize"));
    assert!(text.contains("--flip"));
}

#[test]
fn unknown_command_fails() {
    let out = verro().arg("frobnicate").output().expect("run");
    assert!(!out.status.success());
}

#[test]
fn missing_flags_fail_with_message() {
    let out = verro()
        .args(["sanitize", "--frames", "/nonexistent"])
        .output()
        .expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--out"));
}

#[test]
fn demo_then_sanitize_round_trip() {
    let demo = tmpdir("demo");
    let out = verro()
        .args(["demo", "--out", demo.to_str().unwrap(), "--flip", "0.2"])
        .output()
        .expect("run demo");
    assert!(
        out.status.success(),
        "demo failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(demo.join("000000.ppm").exists());
    assert!(demo.join("synthetic_gt.txt").exists());
    let privacy: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(demo.join("privacy.json")).unwrap())
            .expect("valid json");
    assert!(privacy["privacy"]["epsilon_rr"].as_f64().unwrap() > 0.0);

    // Re-sanitize the demo output using its own MOT file and a budget.
    let san = tmpdir("san");
    let out = verro()
        .args([
            "sanitize",
            "--frames",
            demo.to_str().unwrap(),
            "--gt",
            demo.join("synthetic_gt.txt").to_str().unwrap(),
            "--out",
            san.to_str().unwrap(),
            "--fast",
            "--epsilon",
            "10",
            "--seed",
            "5",
        ])
        .output()
        .expect("run sanitize");
    assert!(
        out.status.success(),
        "sanitize failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let privacy: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(san.join("privacy.json")).unwrap())
            .expect("valid json");
    let eps = privacy["privacy"]["epsilon_rr"].as_f64().unwrap();
    assert!(
        (eps - 10.0).abs() < 1e-6,
        "budget mode must hit epsilon=10, got {eps}"
    );
    assert!(san.join("000000.ppm").exists());

    cleanup(&demo);
    cleanup(&san);
}

#[test]
fn demo_with_injected_faults_succeeds_and_reports_health() {
    let dir = tmpdir("faulty-demo");
    let out = verro()
        .args([
            "demo",
            "--out",
            dir.to_str().unwrap(),
            "--flip",
            "0.2",
            "--inject-faults",
            "--fault-rate",
            "0.3",
            "--fault-seed",
            "9",
        ])
        .output()
        .expect("run demo");
    assert!(
        out.status.success(),
        "faulty demo failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let privacy: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(dir.join("privacy.json")).unwrap())
            .expect("valid json");
    assert_eq!(privacy["health"]["frames"].as_u64().unwrap(), 60);
    assert!(
        privacy["health"]["degraded"].as_bool().unwrap(),
        "rate 0.3 over 60 frames must degrade at least one"
    );
    assert!(privacy["health"]["summary"]
        .as_str()
        .unwrap()
        .contains("ok"));

    // ε is fault-independent: a clean demo with the same sanitizer seed
    // produces a byte-identical privacy statement.
    let clean = tmpdir("clean-demo");
    let out = verro()
        .args(["demo", "--out", clean.to_str().unwrap(), "--flip", "0.2"])
        .output()
        .expect("run demo");
    assert!(out.status.success());
    let clean_privacy: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(clean.join("privacy.json")).unwrap())
            .expect("valid json");
    assert_eq!(privacy["privacy"], clean_privacy["privacy"]);
    assert!(!clean_privacy["health"]["degraded"].as_bool().unwrap());

    cleanup(&dir);
    cleanup(&clean);
}

#[test]
fn on_corrupt_fail_with_faults_exits_3() {
    let dir = tmpdir("fail-demo");
    let out = verro()
        .args([
            "demo",
            "--out",
            dir.to_str().unwrap(),
            "--inject-faults",
            "--fault-rate",
            "0.5",
            "--on-corrupt",
            "fail",
            "--max-retries",
            "0",
        ])
        .output()
        .expect("run demo");
    assert_eq!(
        out.status.code(),
        Some(3),
        "SourceExhausted must map to exit code 3; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("exhausted"));
    cleanup(&dir);
}

#[test]
fn bad_on_corrupt_value_is_usage_error() {
    let out = verro()
        .args([
            "sanitize",
            "--frames",
            "x",
            "--out",
            "y",
            "--on-corrupt",
            "explode",
        ])
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("on-corrupt"));
}

#[test]
fn exclusive_flip_and_epsilon_rejected() {
    let out = verro()
        .args([
            "sanitize",
            "--frames",
            "x",
            "--out",
            "y",
            "--flip",
            "0.1",
            "--epsilon",
            "5",
        ])
        .output()
        .expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("exclusive"));
}

#[test]
fn stream_demo_journals_and_resumes_byte_identically() {
    let dir = tmpdir("stream-journal");
    let out = verro()
        .args(["stream", "--demo", "1", "--out", dir.to_str().unwrap()])
        .output()
        .expect("run stream");
    assert!(
        out.status.success(),
        "stream failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let journal = std::fs::read_to_string(dir.join("run.journal")).expect("journal written");
    assert!(journal.starts_with("verro-journal-v1"));
    assert!(journal.contains("done"), "finished run must be marked done");
    assert!(dir.join("000000.ppm").exists());
    assert!(dir.join("privacy.json").exists());
    let frame0 = std::fs::read(dir.join("000000.ppm")).unwrap();

    // Resuming a finished run verifies every journaled segment against the
    // persisted bytes and re-renders nothing.
    let out = verro()
        .args(["stream", "--demo", "1", "--resume", dir.to_str().unwrap()])
        .output()
        .expect("run resume");
    assert!(
        out.status.success(),
        "resume failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("resumed"));
    assert_eq!(
        std::fs::read(dir.join("000000.ppm")).unwrap(),
        frame0,
        "resume changed published bytes"
    );
    cleanup(&dir);
}

#[test]
fn stream_with_injected_sink_faults_retries_and_succeeds() {
    let dir = tmpdir("stream-sink-faults");
    let out = verro()
        .args([
            "stream",
            "--demo",
            "1",
            "--out",
            dir.to_str().unwrap(),
            "--inject-sink-faults",
            "--sink-fault-rate",
            "0.3",
            "--sink-fault-seed",
            "7",
        ])
        .output()
        .expect("run stream");
    assert!(
        out.status.success(),
        "faulty-sink stream failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("sink:"),
        "rate 0.3 must hit at least one frame and be summarized"
    );
    assert!(dir.join("000000.ppm").exists());
    cleanup(&dir);
}

#[test]
fn resume_without_a_journal_is_refused() {
    let dir = tmpdir("no-journal");
    std::fs::create_dir_all(&dir).unwrap();
    let out = verro()
        .args(["stream", "--demo", "1", "--resume", dir.to_str().unwrap()])
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(3));
    assert!(String::from_utf8_lossy(&out.stderr).contains("run.journal"));
    cleanup(&dir);
}

#[test]
fn out_and_resume_are_exclusive() {
    let out = verro()
        .args(["stream", "--demo", "1", "--out", "a", "--resume", "b"])
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("exclusive"));
}

/// `verro demo` output primed for query tests: returns the artifact path.
fn demo_artifact(dir: &Path) -> std::path::PathBuf {
    let out = verro()
        .args(["demo", "--out", dir.to_str().unwrap(), "--flip", "0.2"])
        .output()
        .expect("run demo");
    assert!(
        out.status.success(),
        "demo failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    dir.join("phase1.json")
}

#[test]
fn concurrent_queries_do_not_lose_ledger_charges() {
    let dir = tmpdir("ledger-race");
    let artifact = demo_artifact(&dir);
    let ledger = dir.join("ledger.json");

    // Four processes charge four distinct tenants at once. Without the
    // advisory lock their load → charge → save cycles interleave and the
    // last save wins, silently dropping earlier tenants' spend.
    let handles: Vec<_> = (0..4)
        .map(|i| {
            let artifact = artifact.clone();
            let ledger = ledger.clone();
            std::thread::spawn(move || {
                verro()
                    .args([
                        "query",
                        "--artifact",
                        artifact.to_str().unwrap(),
                        "--ledger",
                        ledger.to_str().unwrap(),
                        "--tenant",
                        &format!("tenant-{i}"),
                        "--query",
                        "count",
                        "--cap",
                        "1000",
                        "--lock-wait-ms",
                        "30000",
                    ])
                    .output()
                    .expect("run query")
            })
        })
        .collect();
    for h in handles {
        let out = h.join().unwrap();
        assert!(
            out.status.success(),
            "query failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let text = std::fs::read_to_string(&ledger).expect("ledger written");
    for i in 0..4 {
        assert!(
            text.contains(&format!("tenant-{i}")),
            "tenant-{i}'s charge was lost: {text}"
        );
    }
    assert!(
        !dir.join("ledger.json.lock").exists(),
        "lockfile leaked after queries finished"
    );
    cleanup(&dir);
}

#[test]
fn held_ledger_lock_fails_typed_within_the_wait_budget() {
    let dir = tmpdir("ledger-locked");
    let artifact = demo_artifact(&dir);
    let ledger = dir.join("ledger.json");
    std::fs::write(dir.join("ledger.json.lock"), "pid 0\n").unwrap();
    let out = verro()
        .args([
            "query",
            "--artifact",
            artifact.to_str().unwrap(),
            "--ledger",
            ledger.to_str().unwrap(),
            "--tenant",
            "acme",
            "--query",
            "count",
            "--lock-wait-ms",
            "0",
        ])
        .output()
        .expect("run query");
    assert_eq!(
        out.status.code(),
        Some(3),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("locked"));
    assert!(!ledger.exists(), "a refused query must charge nothing");
    cleanup(&dir);
}

fn cleanup(dir: &Path) {
    let _ = std::fs::remove_dir_all(dir);
}
