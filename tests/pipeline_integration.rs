//! End-to-end integration tests across all crates: generator → vision
//! preprocessing → Phase I → Phase II → synthesis → codec.

use verro_audit::fixtures::{deterministic_config as fast_config, street_video};
use verro_core::config::{BackgroundMode, OptimizerStrategy};
use verro_core::Verro;
use verro_ldp::estimate::debias_count_series;
use verro_video::codec::{decode_video, encode_video};
use verro_video::generator::{GeneratedVideo, VideoSpec};
use verro_video::image::ImageBuffer;
use verro_video::source::{FrameSource, InMemoryVideo};
use verro_video::{Camera, ObjectClass, SceneKind, Size};

#[test]
fn full_pipeline_preserves_structure_at_low_f() {
    let video = street_video(1);
    let result = Verro::new(fast_config(0.1, 2))
        .unwrap()
        .sanitize(&video, video.annotations())
        .unwrap();

    // Most objects that reached the picked key frames survive at f = 0.1.
    assert!(
        result.utility.retention() > 0.4,
        "retention {:.2} too low",
        result.utility.retention()
    );
    // Deviation after Phase II interpolation is far below the
    // pre-interpolation level (paper: > 0.9 before, ≈ 0.02–0.2 after).
    let before = verro_core::metrics::trajectory_deviation(
        video.annotations(),
        &result.phase2.knots,
        &result.phase2.mapping,
    );
    let after = result.utility.trajectory_deviation;
    assert!(before > 0.6, "pre-interpolation deviation {before:.2}");
    assert!(after < before, "interpolation must reduce deviation");
}

#[test]
fn moving_camera_video_sanitizes() {
    let video = GeneratedVideo::generate(VideoSpec {
        name: "moving".into(),
        nominal_size: Size::new(200, 150),
        raster_scale: 1.0,
        num_frames: 80,
        num_objects: 10,
        scene: SceneKind::MovingStreet,
        camera: Camera::Pan { speed: 1.0 },
        class: ObjectClass::Pedestrian,
        fps: 14.0,
        seed: 4,
        min_lifetime: 15,
        max_lifetime: 50,
        lifetime_mix: None,
        lighting_drift: 0.08,
        lighting_period: 16.0,
    });
    let result = Verro::new(fast_config(0.2, 5))
        .unwrap()
        .sanitize(&video, video.annotations())
        .unwrap();
    assert!(result.privacy.is_consistent());
    // Moving camera ⇒ multiple background scenes.
    assert!(
        result.video.info().num_backgrounds > 1,
        "moving camera should produce several segments"
    );
}

#[test]
fn synthetic_video_round_trips_through_codec() {
    let video = street_video(7);
    let result = Verro::new(fast_config(0.3, 8))
        .unwrap()
        .sanitize(&video, video.annotations())
        .unwrap();

    // Encode a short clip of V* and decode it losslessly.
    let clip = InMemoryVideo::new(
        (0..12).map(|k| result.video.frame(k)).collect(),
        result.video.fps(),
    );
    let encoded = encode_video(&clip);
    let decoded = decode_video(&encoded).unwrap();
    for (k, frame) in decoded.iter().enumerate() {
        assert_eq!(*frame, clip.frame(k), "frame {k} corrupted");
    }
    // The synthetic video compresses (static reconstructed backgrounds).
    assert!(encoded.byte_len() < clip.raw_byte_len());
}

#[test]
fn ppm_artifacts_render() {
    let video = street_video(9);
    let result = Verro::new(fast_config(0.1, 10))
        .unwrap()
        .sanitize(&video, video.annotations())
        .unwrap();
    let frame = result.video.frame(50);
    let ppm = frame.to_ppm();
    let parsed = ImageBuffer::from_ppm(&ppm).unwrap();
    assert_eq!(parsed, frame);
}

#[test]
fn recipient_count_analytics_track_truth() {
    // Aggregated per-frame counts on V* stay close to the original at low f
    // (Figure 13's claim).
    let video = street_video(11);
    let result = Verro::new(fast_config(0.1, 12))
        .unwrap()
        .sanitize(&video, video.annotations())
        .unwrap();
    let mean_true: f64 = video
        .annotations()
        .per_frame_counts()
        .iter()
        .sum::<usize>() as f64
        / 100.0;
    assert!(
        result.utility.count_mae < mean_true.max(1.0) * 1.5,
        "count MAE {:.2} vs mean count {mean_true:.2}",
        result.utility.count_mae
    );
}

#[test]
fn optimizer_strategies_agree_without_noise() {
    let video = street_video(13);
    let run = |strategy| {
        let mut cfg = fast_config(0.2, 14).with_optimizer(strategy);
        cfg.optimizer_noise_epsilon = None;
        Verro::new(cfg)
            .unwrap()
            .sanitize(&video, video.annotations())
            .unwrap()
    };
    let lp = run(OptimizerStrategy::LpRounding);
    let exact = run(OptimizerStrategy::Exact);
    assert!(
        (lp.phase1.pick.objective - exact.phase1.pick.objective).abs() < 1e-6,
        "LP {} vs exact {}",
        lp.phase1.pick.objective,
        exact.phase1.pick.objective
    );
}

#[test]
fn parallel_background_reconstruction_is_deterministic() {
    // `build_backgrounds` fans segments out across rayon workers; two runs
    // must stay bit-identical regardless of scheduling — both for the
    // exemplar-inpaint path (parallel SSD candidate search inside each
    // segment) and the temporal-median path (parallel row reduction).
    let video = GeneratedVideo::generate(VideoSpec {
        name: "determinism".into(),
        nominal_size: Size::new(160, 120),
        raster_scale: 1.0,
        num_frames: 40,
        num_objects: 6,
        scene: SceneKind::MovingStreet,
        camera: Camera::Pan { speed: 1.2 },
        class: ObjectClass::Pedestrian,
        fps: 14.0,
        seed: 21,
        min_lifetime: 10,
        max_lifetime: 30,
        lifetime_mix: None,
        lighting_drift: 0.1,
        lighting_period: 12.0,
    });
    for background in [BackgroundMode::KeyFrameInpaint, BackgroundMode::TemporalMedian] {
        let mut cfg = fast_config(0.2, 22);
        cfg.background = background;
        let key_frames = verro_vision::keyframe::extract_key_frames(&video, &cfg.keyframe).unwrap();
        let a = verro_core::synthesis::build_backgrounds(
            &video,
            video.annotations(),
            &key_frames,
            &cfg,
        )
        .unwrap();
        let b = verro_core::synthesis::build_backgrounds(
            &video,
            video.annotations(),
            &key_frames,
            &cfg,
        )
        .unwrap();
        assert_eq!(a.len(), b.len(), "{background:?}: segment count diverged");
        for (i, (sa, sb)) in a.iter().zip(&b).enumerate() {
            assert_eq!(sa, sb, "{background:?}: background {i} not bit-identical");
        }
    }
}

#[test]
fn debiasing_recovers_presence_density() {
    // Owner-side check of the "noise cancellation" property: debiased column
    // counts of the randomized matrix approximate the true counts.
    let video = street_video(15);
    let mut cfg = fast_config(0.5, 16);
    cfg.optimizer = OptimizerStrategy::AllKeyFrames;
    let result = Verro::new(cfg)
        .unwrap()
        .sanitize(&video, video.annotations())
        .unwrap();
    let p1 = &result.phase1;
    let n = p1.original.num_objects();
    let cols = p1.original.num_frames();
    let truth: Vec<usize> = (0..cols).map(|j| p1.original.column_count(j)).collect();

    // Average the debiased estimate over many independent randomizations of
    // the *same* presence matrix: the estimator is unbiased, so the mean
    // must converge to the truth while the raw observed counts stay biased.
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let trials = 300;
    let mut est_sum = vec![0.0f64; cols];
    let mut obs_sum = vec![0.0f64; cols];
    for _ in 0..trials {
        let randomized: Vec<verro_ldp::bitvec::BitVec> = p1
            .original
            .rows()
            .iter()
            .map(|row| verro_ldp::rr::randomize_flip(row, 0.5, &mut rng).unwrap())
            .collect();
        let observed: Vec<usize> = (0..cols)
            .map(|j| randomized.iter().filter(|r| r.get(j)).count())
            .collect();
        let est = debias_count_series(&observed, n, 0.5).unwrap();
        for j in 0..cols {
            est_sum[j] += est[j];
            obs_sum[j] += observed[j] as f64;
        }
    }
    let mae = |sums: &[f64]| -> f64 {
        sums.iter()
            .zip(&truth)
            .map(|(s, t)| (s / trials as f64 - *t as f64).abs())
            .sum::<f64>()
            / cols as f64
    };
    let debiased_mae = mae(&est_sum);
    let naive_mae = mae(&obs_sum);
    assert!(
        debiased_mae < 0.5,
        "mean debiased estimate off by {debiased_mae:.2}"
    );
    assert!(
        debiased_mae < naive_mae,
        "debiased {debiased_mae:.2} should beat naive {naive_mae:.2}"
    );
}
