//! Substrate integration tests: detection + tracking quality against the
//! generator's ground truth, key-frame segmentation on realistic footage,
//! and background reconstruction fidelity.

use verro_audit::fixtures::substrate_video as video;
use verro_video::generator::GeneratedVideo;
use verro_video::source::FrameSource;
use verro_video::ObjectClass;
use verro_vision::bgmodel::{median_background, BackgroundConfig};
use verro_vision::detect::{detect, DetectorConfig};
use verro_vision::inpaint::InpaintConfig;
use verro_vision::keyframe::{extract_key_frames, KeyFrameConfig};
use verro_vision::track::{SortTracker, TrackerConfig};

#[test]
fn detector_finds_most_ground_truth_objects() {
    let v = video(1, 6, 60);
    let bg = median_background(&v, 0, 59, &BackgroundConfig::default()).unwrap();
    let cfg = DetectorConfig {
        threshold: 60,
        min_area: 15,
        dilate: 1,
        normalize_gain: true,
    };
    // Across frames with ground-truth objects, recall of detections (IoU
    // matched) should be reasonable.
    let mut matched = 0usize;
    let mut total = 0usize;
    for k in (0..60).step_by(5) {
        let frame = v.frame(k);
        let dets = detect(&frame, &bg, &cfg).unwrap();
        for (_, gt_box) in v.annotations().in_frame(k) {
            total += 1;
            if dets.iter().any(|d| d.bbox.iou(&gt_box) > 0.2) {
                matched += 1;
            }
        }
    }
    assert!(total > 0, "ground truth should populate sampled frames");
    let recall = matched as f64 / total as f64;
    assert!(recall > 0.6, "detector recall {recall:.2} too low");
}

#[test]
fn tracker_recovers_object_count_within_factor() {
    let v = video(2, 6, 80);
    let bg = median_background(&v, 0, 79, &BackgroundConfig::default()).unwrap();
    let det_cfg = DetectorConfig {
        threshold: 60,
        min_area: 15,
        dilate: 1,
        normalize_gain: true,
    };
    let mut tracker = SortTracker::new(TrackerConfig::default(), ObjectClass::Pedestrian);
    for k in 0..80 {
        let dets: Vec<_> = detect(&v.frame(k), &bg, &det_cfg)
            .unwrap()
            .into_iter()
            .map(|d| d.bbox)
            .collect();
        tracker.step(k, &dets).unwrap();
    }
    let tracked = tracker.finish(80);
    let truth = v.annotations().num_objects();
    assert!(
        tracked.num_objects() >= truth / 3 && tracked.num_objects() <= truth * 3,
        "tracked {} vs truth {truth}",
        tracked.num_objects()
    );
    // CLEAR-MOT evaluation: the tracker must reach a usable accuracy on
    // clean synthetic footage.
    let scores = verro_vision::track::evaluate_tracking(v.annotations(), &tracked, 0.3).unwrap();
    assert!(
        scores.recall() > 0.5,
        "recall {:.2} too low (misses {}, matches {})",
        scores.recall(),
        scores.misses,
        scores.matches
    );
    assert!(scores.motp > 0.4, "MOTP {:.2} too low", scores.motp);
}

#[test]
fn keyframes_reduce_dimension_but_keep_objects() {
    // Table 2's shape: ℓ ≪ m while ~80% of objects survive the reduction.
    let v = video(3, 10, 120);
    let mut cfg = KeyFrameConfig::default();
    cfg.tau = 0.97;
    let kf = extract_key_frames(&v, &cfg).unwrap();
    let ell = kf.num_key_frames();
    assert!(ell >= 2, "need at least two key frames, got {ell}");
    assert!(ell < 120 / 2, "ℓ = {ell} not much smaller than m = 120");
    let remaining = v
        .annotations()
        .distinct_objects_in_frames(&kf.key_frames())
        .len();
    let total = v.annotations().num_objects();
    assert!(
        remaining as f64 >= 0.5 * total as f64,
        "only {remaining}/{total} objects survive key frames"
    );
}

#[test]
fn segmentation_covers_video_in_order() {
    let v = video(4, 5, 60);
    let kf = extract_key_frames(&v, &KeyFrameConfig::default()).unwrap();
    // Segments partition the (sampled) frames in order.
    let mut prev_end = None;
    for seg in &kf.segments {
        if let Some(pe) = prev_end {
            assert!(seg.start() > pe);
        }
        assert!(seg.key_frame >= seg.start() && seg.key_frame <= seg.end());
        prev_end = Some(seg.end());
    }
    assert_eq!(kf.segments[0].start(), 0);
}

#[test]
fn background_reconstruction_approximates_pristine_scene() {
    // Inpaint the objects out of a key frame and compare to the generator's
    // ground-truth object-free background.
    let v = video(5, 4, 30);
    let k = (0..30)
        .find(|&k| v.annotations().count_in_frame(k) >= 1)
        .expect("some populated frame");
    let frame = v.frame(k);
    let boxes: Vec<_> = v.annotations().in_frame(k).into_iter().map(|(_, b)| b).collect();
    let reconstructed =
        verro_core::synthesis::reconstruct_background(&frame, &boxes, &InpaintConfig::default());
    let pristine = v.background_frame(k);
    let diff_reconstructed = reconstructed.mean_abs_diff(&pristine);
    let diff_raw = frame.mean_abs_diff(&pristine);
    assert!(
        diff_reconstructed < diff_raw,
        "inpainting should move the frame toward the pristine background \
         ({diff_reconstructed:.2} vs {diff_raw:.2})"
    );
}

#[test]
fn median_background_close_to_pristine() {
    let v = video(6, 4, 40);
    let model = median_background(&v, 0, 39, &BackgroundConfig { max_samples: 20 }).unwrap();
    // Lighting drift means the median sits between bright and dark phases;
    // compare against the drift-free mid-cycle background.
    let pristine = v.background_frame(0);
    let diff = model.mean_abs_diff(&pristine);
    assert!(diff < 20.0, "median background off by {diff:.2} per channel");
}

#[test]
fn generated_presets_are_reproducible_across_calls() {
    use verro_video::generator::MotPreset;
    let a = GeneratedVideo::preset(MotPreset::Mot01, 42);
    let b = GeneratedVideo::preset(MotPreset::Mot01, 42);
    assert_eq!(a.annotations(), b.annotations());
    assert_eq!(a.spec().num_frames, 450);
    assert_eq!(a.annotations().num_objects(), 23);
}
