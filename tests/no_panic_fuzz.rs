//! Adversarial never-panic certification of the public sanitizer API.
//!
//! Every entry point of [`Verro`] — `sanitize`, `sanitize_per_class`,
//! `sanitize_with_tracking`, the fallible `sanitize_fallible` (behind a
//! hostile [`FaultySource`]), and the streaming
//! `sanitize_streaming_fallible` (which additionally must never *hang*, so
//! it runs under a watchdog) — is driven with hostile inputs: annotations
//! whose frame count disagrees with the video, out-of-frame and zero-area
//! boxes, duplicate and sparse object IDs, and type-valid but semantically
//! degenerate configurations (flip probabilities outside `(0, 1]`, zero
//! strides, `min_picked` below 2, NaN budgets). The contract under test is
//! the error-handling contract of DESIGN.md §7: each call must return `Ok`
//! or a typed [`VerroError`] — it must never panic.
//!
//! Videos are tiny (≤ 12 frames of 24×18 pixels) and backgrounds use the
//! temporal-median mode so the 256+ cases per target stay fast; the
//! heavyweight inpainting path has its own property tests in the vision
//! crate.

use proptest::prelude::*;
use verro_core::config::{BackgroundMode, NoiseLevel, OptimizerStrategy, VerroConfig};
use verro_core::error::VerroError;
use verro_core::optimize::ObjectiveForm;
use verro_core::{StreamOptions, Verro};
use verro_video::annotations::VideoAnnotations;
use verro_video::fault::{FaultSchedule, FaultySource};
use verro_video::geometry::{BBox, Size};
use verro_video::image::ImageBuffer;
use verro_video::object::{ObjectClass, ObjectId};
use verro_video::recover::{CorruptAction, RecoveryPolicy, RepairMethod};
use verro_video::source::FrameSource;
use verro_video::Rgb;
use verro_vision::detect::DetectorConfig;
use verro_vision::interp::InterpMethod;
use verro_vision::track::TrackerConfig;

/// A frame source that, unlike `InMemoryVideo`, permits zero frames — the
/// adversary gets to hand the sanitizer an empty video.
#[derive(Debug, Clone)]
struct RawVideo {
    size: Size,
    frames: Vec<ImageBuffer>,
}

impl FrameSource for RawVideo {
    fn num_frames(&self) -> usize {
        self.frames.len()
    }
    fn frame_size(&self) -> Size {
        self.size
    }
    fn frame(&self, k: usize) -> ImageBuffer {
        self.frames[k].clone()
    }
}

/// Deterministic noise video: `num_frames` frames of 24×18 textured pixels
/// derived from `seed` (no RNG at generation time keeps cases reproducible).
fn make_video(num_frames: usize, seed: u64) -> RawVideo {
    let size = Size::new(24, 18);
    let frames = (0..num_frames)
        .map(|k| {
            ImageBuffer::from_fn(size, |x, y| {
                let v = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add((x as u64) * 31 + (y as u64) * 17 + (k as u64) * 131);
                Rgb::new((v >> 16) as u8, (v >> 24) as u8, (v >> 32) as u8)
            })
        })
        .collect();
    RawVideo { size, frames }
}

/// One adversarial object: possibly duplicate ID, possibly out-of-frame or
/// zero-area box, placed on a contiguous run clamped to the annotation span.
type ArbObject = (u32, usize, usize, f64, f64, f64, f64);

fn arb_objects() -> impl Strategy<Value = Vec<ArbObject>> {
    prop::collection::vec(
        (
            0u32..5,      // id — small range forces duplicates
            0usize..14,   // first frame
            1usize..10,   // run length
            -60.0..420.0, // x (often outside the 24-px frame)
            -60.0..300.0, // y
            0.0..50.0f64, // w (zero-area allowed)
            0.0..50.0f64, // h
        ),
        0..6,
    )
}

fn build_annotations(num_frames: usize, objects: &[ArbObject]) -> VideoAnnotations {
    let mut ann = VideoAnnotations::new(num_frames);
    for &(id, start, len, x, y, w, h) in objects {
        for k in start..start + len {
            if k >= num_frames {
                break;
            }
            ann.record(
                ObjectId(id),
                ObjectClass::Pedestrian,
                k,
                BBox::new(x, y, w, h),
            );
        }
    }
    ann
}

/// Fault rates including the hostile band: negative, above 1, NaN, and
/// infinite rates must all be absorbed by the schedule's clamping.
fn arb_rate() -> impl Strategy<Value = f64> {
    prop_oneof![
        0.0..1.0f64,
        0.0..0.6f64,
        -2.0..2.0f64,
        Just(f64::NAN),
        Just(f64::INFINITY),
    ]
}

/// Arbitrary fault schedules, hostile rates included.
fn arb_schedule() -> impl Strategy<Value = FaultSchedule> {
    (
        any::<u64>(),
        arb_rate(),
        0u32..5,
        (arb_rate(), arb_rate(), arb_rate(), arb_rate()),
    )
        .prop_map(
            |(
                seed,
                transient_rate,
                max_transient_run,
                (corrupt_rate, truncate_rate, missing_rate, permanent_rate),
            )| {
                FaultSchedule {
                    seed,
                    transient_rate,
                    max_transient_run,
                    corrupt_rate,
                    truncate_rate,
                    missing_rate,
                    permanent_rate,
                }
            },
        )
}

/// Arbitrary recovery policies over the full knob space (including zero
/// retries and zero backoff).
fn arb_policy() -> impl Strategy<Value = RecoveryPolicy> {
    (
        0u32..5,
        0u64..100,
        0u64..2000,
        prop_oneof![
            Just(CorruptAction::Repair),
            Just(CorruptAction::Skip),
            Just(CorruptAction::Fail),
        ],
        prop_oneof![
            Just(RepairMethod::HoldLast),
            Just(RepairMethod::TemporalBlend)
        ],
    )
        .prop_map(
            |(max_retries, backoff_base_ms, backoff_cap_ms, on_corrupt, repair)| RecoveryPolicy {
                max_retries,
                backoff_base_ms,
                backoff_cap_ms,
                on_corrupt,
                repair,
            },
        )
}

/// Type-valid configurations, including semantically invalid knobs that
/// `Verro::new` must reject as `BadConfig` rather than letting them reach
/// (and panic inside) the pipeline.
fn arb_config() -> impl Strategy<Value = VerroConfig> {
    let noise = prop_oneof![
        (-0.5..1.5f64).prop_map(NoiseLevel::FlipProbability),
        Just(NoiseLevel::FlipProbability(f64::NAN)),
        (-2.0..60.0f64).prop_map(NoiseLevel::EpsilonBudget),
        Just(NoiseLevel::EpsilonBudget(f64::INFINITY)),
    ];
    let optimizer = prop_oneof![
        Just(OptimizerStrategy::LpRounding),
        Just(OptimizerStrategy::Exact),
        Just(OptimizerStrategy::AllKeyFrames),
    ];
    let objective = prop_oneof![
        Just(ObjectiveForm::FullDistortion),
        Just(ObjectiveForm::PaperEq9)
    ];
    let interp = prop_oneof![
        (0usize..6).prop_map(|window| InterpMethod::Lagrange { window }),
        Just(InterpMethod::Linear),
        Just(InterpMethod::Nearest),
    ];
    (
        (noise, optimizer, objective, interp),
        (
            prop::option::of(-1.0..4.0f64), // optimizer noise ε (invalid values included)
            0usize..5,                      // min_picked (values < 2 are invalid)
            (0.5..1.1f64, 0usize..4),       // keyframe (tau, stride); stride 0 invalid
            0usize..8,                      // background_samples; 0 invalid
            any::<bool>(),                  // count_correction
            any::<u64>(),                   // seed
        ),
    )
        .prop_map(
            |(
                (noise, optimizer, objective, interp),
                (
                    optimizer_noise_epsilon,
                    min_picked,
                    (tau, stride),
                    background_samples,
                    count_correction,
                    seed,
                ),
            )| {
                let mut cfg = VerroConfig::default();
                cfg.noise = noise;
                cfg.optimizer = optimizer;
                cfg.objective = objective;
                cfg.interp = interp;
                cfg.optimizer_noise_epsilon = optimizer_noise_epsilon;
                cfg.min_picked = min_picked;
                cfg.keyframe.tau = tau;
                cfg.keyframe.stride = stride;
                // Temporal median keeps each fuzz case cheap; the inpaint
                // path is property-tested in verro-vision.
                cfg.background = BackgroundMode::TemporalMedian;
                cfg.background_samples = background_samples;
                cfg.count_correction = count_correction;
                cfg.seed = seed;
                cfg
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `sanitize` never panics: any input drives it to `Ok` or a typed error.
    #[test]
    fn sanitize_never_panics(
        cfg in arb_config(),
        video_frames in 0usize..12,
        ann_frames in 0usize..14,
        objects in arb_objects(),
        video_seed in any::<u64>(),
    ) {
        let video = make_video(video_frames, video_seed);
        let ann = build_annotations(ann_frames, &objects);
        if let Ok(verro) = Verro::new(cfg) {
            // Ok and typed Err are both acceptable; a panic fails the test.
            let _ = verro.sanitize(&video, &ann);
        }
    }

    /// `sanitize_per_class` never panics.
    #[test]
    fn sanitize_per_class_never_panics(
        cfg in arb_config(),
        video_frames in 0usize..12,
        ann_frames in 0usize..14,
        objects in arb_objects(),
        video_seed in any::<u64>(),
    ) {
        let video = make_video(video_frames, video_seed);
        let ann = build_annotations(ann_frames, &objects);
        if let Ok(verro) = Verro::new(cfg) {
            let _ = verro.sanitize_per_class(&video, &ann);
        }
    }

    /// `sanitize_with_tracking` never panics. Detector and tracker knobs are
    /// fuzzed over their valid bands (their constructors debug-assert on
    /// nonsensical noise, which is the documented contract); the video and
    /// sanitizer configuration stay fully adversarial.
    #[test]
    fn sanitize_with_tracking_never_panics(
        cfg in arb_config(),
        video_frames in 0usize..10,
        video_seed in any::<u64>(),
        threshold in 0u32..900,
        min_area in 0usize..40,
        dilate in 0u32..3,
        normalize_gain in any::<bool>(),
        iou_threshold in 0.0..1.0f64,
        max_misses in 0usize..5,
        min_hits in 0usize..5,
    ) {
        let video = make_video(video_frames, video_seed);
        let detector = DetectorConfig {
            threshold,
            min_area,
            dilate,
            normalize_gain,
        };
        let tracker = TrackerConfig {
            iou_threshold,
            max_misses,
            min_hits,
            ..TrackerConfig::default()
        };
        if let Ok(verro) = Verro::new(cfg) {
            let _ = verro.sanitize_with_tracking(
                &video,
                &detector,
                tracker,
                ObjectClass::Pedestrian,
            );
        }
    }

    /// The fallible path never panics either: arbitrary seeded fault
    /// schedules (hostile rates included) and arbitrary recovery policies
    /// over adversarial videos must land on `Ok` — with a complete health
    /// log — or a typed error, `SourceExhausted` included.
    #[test]
    fn sanitize_fallible_never_panics(
        cfg in arb_config(),
        video_frames in 0usize..12,
        ann_frames in 0usize..14,
        objects in arb_objects(),
        video_seed in any::<u64>(),
        schedule in arb_schedule(),
        policy in arb_policy(),
    ) {
        let video = make_video(video_frames, video_seed);
        let ann = build_annotations(ann_frames, &objects);
        if let Ok(verro) = Verro::new(cfg) {
            let src = FaultySource::new(video, schedule);
            match verro.sanitize_fallible(&src, &ann, policy) {
                Ok(result) => {
                    prop_assert_eq!(result.health.num_frames(), video_frames);
                }
                Err(VerroError::SourceExhausted { error, health }) => {
                    prop_assert!(error.frame() <= video_frames);
                    prop_assert!(health.num_frames() <= video_frames);
                }
                Err(_) => {}
            }
        }
    }
}

proptest! {
    // Fewer cases than the batch targets: each case runs the two-sweep
    // streaming engine (and possibly its backoff sleeps) twice over.
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The streaming entry point never panics *or hangs*: hostile sources
    /// (zero frames, mid-stream exhaustion through permanent faults,
    /// transient runs mid-segment), mismatched annotations, degenerate
    /// chunk/channel options (zero and absurdly large), and starved or
    /// zero memory budgets must all land on `Ok` or a typed error before
    /// the watchdog fires. The stage graph runs on its own thread so a
    /// deadlocked channel cycle surfaces as a test failure, not a stuck
    /// suite.
    #[test]
    fn sanitize_streaming_never_panics(
        cfg in arb_config(),
        budget in prop_oneof![
            Just(0usize),
            1usize..100_000,
            1_000_000usize..10_000_000,
            Just(usize::MAX),
        ],
        video_frames in 0usize..12,
        ann_frames in 0usize..14,
        objects in arb_objects(),
        video_seed in any::<u64>(),
        schedule in arb_schedule(),
        policy in arb_policy(),
        chunk_size in prop_oneof![0usize..40, Just(usize::MAX)],
        channel_slots in 0usize..6,
    ) {
        let mut cfg = cfg;
        cfg.stream_memory_budget = budget;
        if let Ok(verro) = Verro::new(cfg) {
            let (done_tx, done_rx) = std::sync::mpsc::channel();
            std::thread::spawn(move || {
                let video = make_video(video_frames, video_seed);
                let ann = build_annotations(ann_frames, &objects);
                let src = FaultySource::new(video, schedule);
                let options = StreamOptions { chunk_size, channel_slots };
                let result =
                    verro.sanitize_streaming_fallible(&src, &ann, policy, &options, |_, _| {});
                let _ = done_tx.send(result.map(|_| ()).map_err(Box::new));
            });
            match done_rx.recv_timeout(std::time::Duration::from_secs(120)) {
                Ok(Err(err)) => {
                    if let VerroError::SourceExhausted { error, health } = *err {
                        prop_assert!(error.frame() <= video_frames);
                        prop_assert!(health.num_frames() <= video_frames);
                    }
                }
                Ok(Ok(())) => {}
                // A dead sender without a value means the engine panicked;
                // a timeout means it hung. Both violate the contract.
                Err(_) => prop_assert!(
                    false,
                    "streaming engine panicked or hung (watchdog fired)"
                ),
            }
        }
    }
}
