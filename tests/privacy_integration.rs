//! Privacy-property integration tests: the ε-Object Indistinguishability
//! guarantee checked end-to-end, exact probability bookkeeping, and the
//! special cases discussed in Section 5 of the paper.

use std::collections::BTreeMap;
use verro_audit::fixtures::{fast_config, privacy_video as small_video};
use verro_core::config::OptimizerStrategy;
use verro_core::Verro;
use verro_ldp::bitvec::BitVec;
use verro_ldp::budget::epsilon_of_flip;
use verro_ldp::rr::output_probability_flip;
use verro_video::annotations::VideoAnnotations;
use verro_video::geometry::BBox;
use verro_video::object::{ObjectClass, ObjectId};

/// All bit vectors of the given length.
fn all_vectors(len: usize) -> Vec<BitVec> {
    (0..(1usize << len))
        .map(|mask| BitVec::from_bools(&(0..len).map(|i| (mask >> i) & 1 == 1).collect::<Vec<_>>()))
        .collect()
}

#[test]
fn theorem_3_3_bound_holds_exactly_for_pipeline_parameters() {
    // Run the pipeline, read off (ℓ*, f), and verify the probability-ratio
    // bound e^ε on exhaustive small vectors with exactly those parameters.
    let video = small_video(6, 1);
    let result = Verro::new(fast_config(0.4, 2))
        .unwrap()
        .sanitize(&video, video.annotations())
        .unwrap();
    let f = result.privacy.flip;
    let ell = result.privacy.picked_frames.min(5); // cap for exhaustiveness
    let eps = epsilon_of_flip(ell, f).unwrap();

    let vectors = all_vectors(ell);
    for bi in &vectors {
        for bj in &vectors {
            for y in &vectors {
                let pi = output_probability_flip(bi, y, f).unwrap();
                let pj = output_probability_flip(bj, y, f).unwrap();
                assert!(
                    pi <= eps.exp() * pj * (1.0 + 1e-9),
                    "ratio violated for {bi} vs {bj} -> {y}"
                );
            }
        }
    }
    // And the pipeline's reported epsilon uses the same formula over ℓ*.
    assert!(result.privacy.is_consistent());
}

#[test]
fn epsilon_decreases_with_larger_f() {
    let video = small_video(6, 3);
    let eps_at = |f: f64| {
        Verro::new(fast_config(f, 4))
            .unwrap()
            .sanitize(&video, video.annotations())
            .unwrap()
            .privacy
            .epsilon_rr
    };
    let e1 = eps_at(0.1);
    let e5 = eps_at(0.5);
    let e9 = eps_at(0.9);
    assert!(e1 > e5 && e5 > e9, "{e1} > {e5} > {e9} expected");
}

#[test]
fn one_object_video_is_protected() {
    // Section 5: even a single-object video yields a synthetic video whose
    // object cannot be traced back — presence is randomized and coordinates
    // come from the candidate pool.
    let video = small_video(1, 5);
    assert_eq!(video.annotations().num_objects(), 1);
    let result = Verro::new(fast_config(0.5, 6))
        .unwrap()
        .sanitize(&video, video.annotations())
        .unwrap();
    assert!(result.privacy.is_consistent());
    // Either the object is lost (possible under RR) or its synthetic
    // trajectory exists; both outcomes are valid randomized outputs.
    let retained = result.phase2.synthetic.num_objects();
    assert!(retained <= 1);
}

#[test]
fn any_object_can_generate_any_output_slot() {
    // The heart of indistinguishability (Theorem 4.1): over many runs, each
    // original object's replacement lands on each candidate slot with
    // positive frequency. We count which original object was mapped to the
    // synthetic object appearing *first* in the output and require every
    // object to win sometimes.
    let video = small_video(4, 7);
    let n = video.annotations().num_objects();
    let mut first_winner = vec![0usize; n];
    for seed in 0..60 {
        let result = Verro::new(fast_config(0.7, 100 + seed))
            .unwrap()
            .sanitize(&video, video.annotations())
            .unwrap();
        // Find the synthetic object with the smallest first frame and map it
        // back to its original.
        let inv: BTreeMap<ObjectId, ObjectId> = result
            .phase2
            .mapping
            .iter()
            .map(|(o, s)| (*s, *o))
            .collect();
        if let Some(track) = result
            .phase2
            .synthetic
            .tracks()
            .min_by_key(|t| t.first_frame().unwrap_or(usize::MAX))
        {
            if let Some(orig) = inv.get(&track.id) {
                first_winner[orig.0 as usize] += 1;
            }
        }
    }
    let winners = first_winner.iter().filter(|&&c| c > 0).count();
    assert!(
        winners >= 3,
        "expected most objects to win the first slot sometimes: {first_winner:?}"
    );
}

#[test]
fn naive_baseline_spends_budget_but_destroys_utility() {
    // Algorithm 1 on a 60-frame video with ε = 3: keep probability per bit
    // is ≈ 0.5, so the randomized matrix is ≈ uniform — the Section 3.1
    // phenomenon, contrasted with Phase I's optimized approach.
    use verro_core::naive::randomize_naive;
    use verro_core::presence::PresenceMatrix;
    use rand::SeedableRng;

    let video = small_video(8, 9);
    let matrix = PresenceMatrix::from_annotations(video.annotations());
    let mut rng = rand::rngs::StdRng::seed_from_u64(10);
    let naive = randomize_naive(&matrix, 3.0, &mut rng).unwrap();
    // ε/m = 0.05 per bit → keep probability e^0.05/(1+e^0.05) ≈ 0.512.
    assert!((naive.keep_probability - 0.5).abs() < 0.02);
    let density: f64 = naive
        .randomized
        .rows()
        .iter()
        .map(|r| r.count_ones() as f64 / r.len() as f64)
        .sum::<f64>()
        / naive.randomized.num_objects() as f64;
    assert!((density - 0.5).abs() < 0.1, "density {density}");

    // VERRO at the same total ε keeps far more structure: its randomized
    // matrix over the picked frames has low flip noise.
    let mut cfg = fast_config(0.5, 11).with_epsilon(3.0);
    cfg.optimizer = OptimizerStrategy::Exact;
    cfg.min_picked = 2;
    let result = Verro::new(cfg)
        .unwrap()
        .sanitize(&video, video.annotations())
        .unwrap();
    // Per-bit corruption: VERRO flips each picked-frame bit with
    // probability f/2, the naive baseline flips each of the m bits with
    // probability 1 − keep ≈ 0.49. Equal total ε, far less corruption.
    assert!(
        result.privacy.flip / 2.0 < 1.0 - naive.keep_probability,
        "VERRO per-bit corruption {:.3} should beat naive {:.3}",
        result.privacy.flip / 2.0,
        1.0 - naive.keep_probability
    );
}

#[test]
fn phase2_is_pure_postprocessing() {
    // Re-running Phase II with different seeds on the same Phase I output
    // never changes the reported ε (Theorem 4.1).
    let video = small_video(5, 12);
    let eps: Vec<f64> = (0..4)
        .map(|seed| {
            let mut cfg = fast_config(0.3, 50 + seed);
            // Deterministic optimizer: ℓ* (and hence ε) must not depend on
            // the seed that only drives Phase II randomness.
            cfg.optimizer_noise_epsilon = None;
            Verro::new(cfg)
                .unwrap()
                .sanitize(&video, video.annotations())
                .unwrap()
                .privacy
                .epsilon_rr
        })
        .collect();
    // ε depends only on (ℓ*, f); with the same key-frame structure the
    // values agree across seeds.
    for e in &eps {
        assert!((e - eps[0]).abs() < 1e-9, "epsilon varied: {eps:?}");
    }
}

#[test]
fn empty_and_degenerate_annotations() {
    let video = small_video(3, 13);
    // Annotations with one object in a single frame.
    let mut ann = VideoAnnotations::new(60);
    ann.record(
        ObjectId(0),
        ObjectClass::Pedestrian,
        30,
        BBox::new(50.0, 50.0, 6.0, 12.0),
    );
    let result = Verro::new(fast_config(0.2, 14))
        .unwrap()
        .sanitize(&video, &ann)
        .unwrap();
    assert!(result.privacy.is_consistent());
}

#[test]
fn verro_defeats_linkage_attack_blur_does_not() {
    // The motivating comparison (Sections 1-2): an adversary who knows a
    // target's true trajectory re-identifies every detect-and-blur object,
    // but is near the guessing floor against VERRO's randomized output.
    use verro_core::adversary::linkage_attack;

    let video = small_video(8, 20);
    let original = video.annotations();
    let frame_diag = (200.0f64 * 200.0 + 150.0 * 150.0).sqrt();

    // Detect-and-blur publishes the true trajectories (identity map).
    let blur_map: BTreeMap<ObjectId, ObjectId> =
        original.ids().into_iter().map(|id| (id, id)).collect();
    let blur_report = linkage_attack(original, original, &blur_map, frame_diag);
    assert_eq!(
        blur_report.success_rate(),
        1.0,
        "blur baseline must be fully re-identifiable"
    );

    // VERRO at a strong noise level, averaged over several seeds.
    let mut verro_correct = 0usize;
    let mut verro_targets = 0usize;
    for seed in 0..6 {
        let result = Verro::new(fast_config(0.5, 300 + seed))
            .unwrap()
            .sanitize(&video, original)
            .unwrap();
        let report = linkage_attack(
            original,
            &result.phase2.synthetic,
            &result.phase2.mapping,
            frame_diag,
        );
        verro_correct += report.correct;
        verro_targets += report.targets;
    }
    let verro_rate = verro_correct as f64 / verro_targets.max(1) as f64;
    assert!(
        verro_rate < 0.6,
        "VERRO re-identification {verro_rate:.2} should be far below the blur baseline's 1.0"
    );
}

