//! Batch/stream conformance certification: the streaming stage graph of
//! `verro_core::stream` must publish exactly the bytes the batch pipeline
//! publishes — every rendered `V*` frame as encoded PPM bytes and the
//! serialized [`PrivacyStatement`] — for the three MOT presets of Table 1,
//! across every knob that only reschedules work: ingest chunk size (one
//! histogram per message, a mid-sized batch, the whole video in one
//! message), channel capacity, rayon thread count, kernel mode, and — for
//! the fallible entry point — deterministic fault schedules with retrying
//! and degrading recovery policies.
//!
//! The presets are trimmed (short clip, small raster, fewer objects) so the
//! sweep stays tier-1 fast while keeping each preset's distinguishing
//! structure: scene theme, camera motion, frame rate, and lighting drift
//! all come straight from [`MotPreset::spec`]. The full-scale run is the
//! `#[ignore]`d smoke at the bottom, exercised by the release perf job.

use verro_core::config::BackgroundMode;
use verro_core::{StreamOptions, Verro, VerroConfig};
use verro_video::fault::{FaultSchedule, FaultySource};
use verro_video::generator::{GeneratedVideo, MotPreset};
use verro_video::recover::{CorruptAction, RecoveryPolicy};
use verro_video::source::{FrameSource, InMemoryVideo};

const SEEDS: [u64; 2] = [7, 41];

/// A Table 1 preset trimmed for tier-1: the same scene, camera, frame rate,
/// and lighting drift as the full preset, at a small raster and short clip.
fn preset_video(preset: MotPreset, seed: u64) -> GeneratedVideo {
    let mut spec = preset.spec(0.05, seed);
    spec.num_frames = 48;
    spec.num_objects = spec.num_objects.min(9);
    spec.min_lifetime = spec.min_lifetime.min(12);
    spec.max_lifetime = spec.max_lifetime.min(44);
    GeneratedVideo::generate(spec)
}

/// Harness configuration: temporal-median backgrounds keep each run cheap,
/// stride 2 exercises the sampled-histogram path (display frames between
/// samples), and a sub-unity tau produces several segments per clip.
fn harness_config(seed: u64) -> VerroConfig {
    let mut cfg = VerroConfig::default().with_flip(0.2).with_seed(seed);
    cfg.background = BackgroundMode::TemporalMedian;
    cfg.keyframe.tau = 0.94;
    cfg.keyframe.stride = 2;
    cfg.optimizer_noise_epsilon = None;
    cfg
}

/// The byte-level fingerprint of a release: every rendered `V*` frame as
/// encoded PPM bytes plus the serialized privacy statement.
type Fingerprint = (Vec<Vec<u8>>, String);

fn batch_fingerprint(video: &GeneratedVideo, cfg: &VerroConfig) -> Fingerprint {
    let verro = Verro::new(cfg.clone()).expect("valid config");
    let result = verro
        .sanitize(video, video.annotations())
        .expect("batch sanitize succeeds");
    let frames = result
        .video
        .render_all()
        .iter()
        .map(|f| f.to_ppm())
        .collect();
    let privacy = serde_json::to_string(&result.privacy).expect("privacy serializes");
    (frames, privacy)
}

fn stream_fingerprint(
    video: &GeneratedVideo,
    cfg: &VerroConfig,
    options: &StreamOptions,
) -> Fingerprint {
    let verro = Verro::new(cfg.clone()).expect("valid config");
    let mut frames: Vec<Vec<u8>> = Vec::new();
    let out = verro
        .sanitize_streaming(video, video.annotations(), options, |k, img| {
            assert_eq!(k, frames.len(), "sink frames out of order");
            frames.push(img.to_ppm());
        })
        .expect("streaming sanitize succeeds");
    assert_eq!(frames.len(), FrameSource::num_frames(video));
    assert_eq!(out.stats.frames, frames.len());
    let privacy = serde_json::to_string(&out.privacy).expect("privacy serializes");
    (frames, privacy)
}

/// The ISSUE's chunk-size sweep: one sampled histogram per message, a
/// mid-sized batch on the order of a segment, and the whole video in a
/// single message — each paired with a different channel capacity.
fn chunkings(num_frames: usize) -> [StreamOptions; 3] {
    [
        StreamOptions {
            chunk_size: 1,
            channel_slots: 1,
        },
        StreamOptions {
            chunk_size: 8,
            channel_slots: 2,
        },
        StreamOptions {
            chunk_size: num_frames,
            channel_slots: 4,
        },
    ]
}

fn assert_preset_conformance(preset: MotPreset) {
    for seed in SEEDS {
        let video = preset_video(preset, 11 + seed);
        let cfg = harness_config(seed);
        let batch = batch_fingerprint(&video, &cfg);
        for options in chunkings(FrameSource::num_frames(&video)) {
            let stream = stream_fingerprint(&video, &cfg, &options);
            assert_eq!(
                batch, stream,
                "{preset:?} seed {seed} {options:?}: release bytes diverged"
            );
        }
    }
}

#[test]
fn mot01_streaming_matches_batch_across_chunkings() {
    assert_preset_conformance(MotPreset::Mot01);
}

#[test]
fn mot03_streaming_matches_batch_across_chunkings() {
    assert_preset_conformance(MotPreset::Mot03);
}

#[test]
fn mot06_streaming_matches_batch_across_chunkings() {
    assert_preset_conformance(MotPreset::Mot06);
}

/// Streaming under a single-thread rayon pool reproduces the default pool
/// (and the batch release) byte for byte: every parallel stage the engine
/// reuses collects in index order from pure per-item functions.
#[test]
fn thread_counts_are_byte_identical() {
    let single = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("single-thread pool builds");
    let video = preset_video(MotPreset::Mot01, 5);
    let cfg = harness_config(SEEDS[0]);
    let options = StreamOptions::default();
    let default_fp = stream_fingerprint(&video, &cfg, &options);
    let single_fp = single.install(|| stream_fingerprint(&video, &cfg, &options));
    assert_eq!(
        default_fp, single_fp,
        "streaming release depends on thread count"
    );
    assert_eq!(
        default_fp,
        batch_fingerprint(&video, &cfg),
        "streaming release diverged from batch"
    );
}

/// `--kernels scalar` and `--kernels simd` publish the same streamed bytes:
/// kernel selection is pure scheduling for the streaming graph exactly as
/// it is for batch (every SIMD kernel is certified bit-identical to its
/// scalar reference).
#[test]
fn kernel_modes_are_byte_identical() {
    use verro_core::KernelMode;

    let video = preset_video(MotPreset::Mot06, 5);
    let cfg = harness_config(SEEDS[1]);
    let options = StreamOptions::default();
    KernelMode::Scalar.apply();
    let scalar_batch = batch_fingerprint(&video, &cfg);
    let scalar_stream = stream_fingerprint(&video, &cfg, &options);
    KernelMode::Simd.apply();
    let simd_stream = stream_fingerprint(&video, &cfg, &options);
    verro_vision::simd::set_kernel_override(None);
    verro_ldp::simd::set_kernel_override(None);
    assert_eq!(
        scalar_stream, scalar_batch,
        "scalar streaming diverged from batch"
    );
    assert_eq!(
        simd_stream, scalar_batch,
        "simd streaming diverged from the scalar release"
    );
}

/// Deterministic fault schedule `i` for the fallible sweep: rates step
/// through the mixed bands, and one schedule adds permanent faults so the
/// failing path is exercised too.
fn schedule_for(i: u64) -> FaultSchedule {
    let mut schedule = FaultSchedule::mixed(0x57e4_0000 + i, (i % 8) as f64 * 0.06);
    if i == 7 {
        schedule.permanent_rate = 0.05;
    }
    schedule
}

/// Alternating recovery policies (repairing vs skipping corrupt frames),
/// with backoff zeroed so retries do not sleep in the test.
fn policy_for(i: u64) -> RecoveryPolicy {
    RecoveryPolicy {
        backoff_base_ms: 0,
        backoff_cap_ms: 0,
        on_corrupt: if i % 2 == 1 {
            CorruptAction::Skip
        } else {
            CorruptAction::Repair
        },
        ..RecoveryPolicy::default()
    }
}

/// The fallible streaming entry point agrees with batch `sanitize_fallible`
/// on every schedule: byte-identical frames, privacy statement, and health
/// report on success, and the same typed error class on failure.
#[test]
fn fault_schedules_are_byte_identical_to_batch_fallible() {
    let gen = preset_video(MotPreset::Mot01, 9);
    let video = InMemoryVideo::collect_from(&gen);
    let ann = gen.annotations();
    let verro = Verro::new(harness_config(13)).expect("valid config");
    let mut succeeded = 0usize;
    for i in 0..10u64 {
        let faulty = FaultySource::new(video.clone(), schedule_for(i));
        let policy = policy_for(i);
        let batch = verro.sanitize_fallible(&faulty, ann, policy);
        let mut frames: Vec<Vec<u8>> = Vec::new();
        let stream = verro.sanitize_streaming_fallible(
            &faulty,
            ann,
            policy,
            &StreamOptions::default(),
            |_, img| frames.push(img.to_ppm()),
        );
        match (batch, stream) {
            (Ok(b), Ok(s)) => {
                succeeded += 1;
                let batch_frames: Vec<Vec<u8>> =
                    b.video.render_all().iter().map(|f| f.to_ppm()).collect();
                assert_eq!(frames, batch_frames, "schedule {i}: frames diverged");
                assert_eq!(
                    serde_json::to_string(&s.privacy).expect("privacy serializes"),
                    serde_json::to_string(&b.privacy).expect("privacy serializes"),
                    "schedule {i}: privacy statement diverged"
                );
                assert_eq!(s.health, b.health, "schedule {i}: health diverged");
            }
            (Err(be), Err(se)) => {
                assert_eq!(
                    std::mem::discriminant(&be),
                    std::mem::discriminant(&se),
                    "schedule {i}: batch failed with {be:?} but streaming with {se:?}"
                );
            }
            (batch, stream) => panic!(
                "schedule {i}: batch ok={} but streaming ok={}",
                batch.is_ok(),
                stream.is_ok()
            ),
        }
    }
    assert!(
        succeeded >= 6,
        "fault sweep too hostile to certify the success path ({succeeded}/10 succeeded)"
    );
}

/// Full-scale smoke for the release perf job: MOT01 at the evaluation
/// scale streamed end to end under the default ceiling, with the sink
/// observing every frame in order.
#[test]
#[ignore = "full-scale; run in release mode by the CI perf-smoke job"]
fn full_scale_streaming_smoke() {
    let video = GeneratedVideo::generate(MotPreset::Mot01.spec(0.25, 20200330));
    let mut cfg = VerroConfig::default().with_flip(0.2).with_seed(1);
    cfg.background = BackgroundMode::TemporalMedian;
    cfg.keyframe.tau = 0.94;
    cfg.keyframe.stride = 4;
    cfg.optimizer_noise_epsilon = None;
    let budget = cfg.stream_memory_budget;
    let verro = Verro::new(cfg).expect("valid config");
    let mut delivered = 0usize;
    let out = verro
        .sanitize_streaming(
            &video,
            video.annotations(),
            &StreamOptions::default(),
            |k, _| {
                assert_eq!(k, delivered, "sink frames out of order");
                delivered += 1;
            },
        )
        .expect("full-scale streaming succeeds");
    assert_eq!(delivered, 450);
    assert!(!out.health.is_degraded());
    assert!(
        out.stats.peak_raster_bytes + out.stats.cache.peak_bytes <= budget,
        "peak {} + cache {} exceeded budget {budget}",
        out.stats.peak_raster_bytes,
        out.stats.cache.peak_bytes
    );
}
