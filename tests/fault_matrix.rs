//! Fault-matrix certification of the fallible sanitizer entry points.
//!
//! The acceptance contract of the fault-tolerance layer (DESIGN.md §9): for
//! any seeded fault schedule, `sanitize_with_tracking_fallible` either
//! **succeeds** with a [`FrameHealthReport`] and a [`PrivacyStatement`] that
//! is byte-identical to the fault-free run of the same sanitizer seed, or
//! **fails** with the typed `VerroError::SourceExhausted` — never a panic,
//! never ε drift. Recovery output is a pure function of `(seed, schedule)`,
//! so every successful run is replayed and compared field-for-field.
//!
//! The workload is engineered so the privacy statement is provably
//! schedule-independent: a static two-shot scene with a hard channel-rotate
//! cut (two segments with a huge similarity margin at τ = 0.90) and the
//! `AllKeyFrames` optimizer, making `ℓ* = 2` for every run that ingests at
//! least one healthy frame on each side of the cut. Hold-last repair only
//! ever substitutes rasters from the same side, so the segment count — and
//! with it ε = ℓ*·ln((2−f)/f) — cannot move.

use verro_core::config::{BackgroundMode, OptimizerStrategy, VerroConfig};
use verro_core::{StreamOptions, Verro, VerroError};
use verro_video::annotations::VideoAnnotations;
use verro_video::fault::{FaultSchedule, FaultySource};
use verro_video::geometry::{BBox, Size};
use verro_video::image::ImageBuffer;
use verro_video::object::{ObjectClass, ObjectId};
use verro_video::recover::{CorruptAction, RecoveryPolicy};
use verro_video::source::InMemoryVideo;
use verro_video::Rgb;
use verro_vision::detect::DetectorConfig;
use verro_vision::track::TrackerConfig;

const FRAMES: usize = 36;
const CUT: usize = 18;

/// Two-shot scene: a solid backdrop with a hard channel-rotate cut at
/// `CUT` and one bright square drifting right (so tracking finds a real
/// object). Within each shot consecutive frames are near-identical, across
/// the cut the hue histogram is far below any sane τ — segmentation yields
/// exactly two segments with a wide margin.
fn cut_scene() -> InMemoryVideo {
    let size = Size::new(48, 36);
    let frames = (0..FRAMES)
        .map(|k| {
            let backdrop = if k < CUT {
                Rgb::new(40, 90, 200)
            } else {
                Rgb::new(200, 40, 90)
            };
            let ox = 4 + k as u32;
            ImageBuffer::from_fn(size, |x, y| {
                if x >= ox && x < ox + 6 && (14..20).contains(&y) {
                    Rgb::new(235, 235, 235)
                } else {
                    backdrop
                }
            })
        })
        .collect();
    InMemoryVideo::new(frames, 30.0)
}

/// `AllKeyFrames` makes `ℓ*` equal the segment count, which the workload
/// pins at 2 — the privacy statement depends on nothing else.
fn matrix_config() -> VerroConfig {
    let mut cfg = VerroConfig::default().with_flip(0.25);
    cfg.optimizer = OptimizerStrategy::AllKeyFrames;
    cfg.background = BackgroundMode::TemporalMedian;
    cfg.keyframe.tau = 0.90;
    cfg.seed = 42;
    cfg
}

/// Schedule `i` of the matrix: fault rates sweep 0 → ~0.49 and every ninth
/// schedule adds a permanent-fault band to exercise the `SourceExhausted`
/// arm of the contract.
fn schedule_for(i: usize) -> FaultSchedule {
    let mut s = FaultSchedule::mixed(0x5eed_0000 + i as u64, (i % 8) as f64 * 0.07);
    if i > 0 && i % 9 == 0 {
        s.permanent_rate = 0.08;
    }
    s
}

/// Alternate hold-last repair and skip so both degraded modes are in the
/// matrix.
fn policy_for(i: usize) -> RecoveryPolicy {
    if i % 2 == 0 {
        RecoveryPolicy::default()
    } else {
        RecoveryPolicy {
            on_corrupt: CorruptAction::Skip,
            ..RecoveryPolicy::default()
        }
    }
}

fn run_matrix(num_schedules: usize) {
    let video = cut_scene();
    let detector = DetectorConfig::default();
    let tracker = TrackerConfig::default();
    let verro = Verro::new(matrix_config()).expect("valid config");

    let (baseline, _) = verro
        .sanitize_with_tracking(&video, &detector, tracker, ObjectClass::Pedestrian)
        .expect("fault-free run succeeds");
    assert_eq!(
        baseline.privacy.picked_frames, 2,
        "workload must pin ℓ* = 2 (two segments, AllKeyFrames)"
    );
    let baseline_bytes = serde_json::to_string(&baseline.privacy).expect("serialize");

    let mut succeeded = 0usize;
    let mut exhausted = 0usize;
    let mut degraded = 0usize;
    for i in 0..num_schedules {
        let schedule = schedule_for(i);
        let policy = policy_for(i);
        let src = FaultySource::new(video.clone(), schedule);
        let run = || {
            verro.sanitize_with_tracking_fallible(
                &src,
                &detector,
                tracker,
                ObjectClass::Pedestrian,
                policy,
            )
        };
        match run() {
            Ok((result, annotations)) => {
                succeeded += 1;
                if result.health.is_degraded() {
                    degraded += 1;
                }
                assert_eq!(
                    result.privacy, baseline.privacy,
                    "schedule {i}: privacy statement drifted from the fault-free run"
                );
                let bytes = serde_json::to_string(&result.privacy).expect("serialize");
                assert_eq!(
                    bytes, baseline_bytes,
                    "schedule {i}: privacy statement not byte-identical to the fault-free run"
                );
                // Recovery is deterministic given (seed, schedule): replay
                // the exact call and demand identical output everywhere.
                let (replay, replay_ann) = run().expect("replay of a successful schedule");
                assert_eq!(
                    result.privacy, replay.privacy,
                    "schedule {i}: ε not replayable"
                );
                assert_eq!(
                    result.health, replay.health,
                    "schedule {i}: health not replayable"
                );
                assert_eq!(
                    annotations, replay_ann,
                    "schedule {i}: tracked annotations not replayable"
                );
                assert_eq!(
                    result.phase1.randomized, replay.phase1.randomized,
                    "schedule {i}: randomized response not replayable"
                );
            }
            Err(VerroError::SourceExhausted { error, health }) => {
                exhausted += 1;
                assert!(
                    !error.is_retryable(),
                    "schedule {i}: exhaustion must be caused by a non-retryable fault \
                     under the default retry budget, got {error}"
                );
                assert!(health.num_frames() <= FRAMES);
            }
            Err(other) => panic!("schedule {i}: unexpected error {other}"),
        }
    }
    assert!(
        succeeded > 0,
        "matrix is vacuous: no schedule completed ({exhausted} exhausted)"
    );
    assert!(
        degraded > 0,
        "matrix is vacuous: no schedule actually degraded a frame"
    );
}

/// ≥ 64 seeded schedules through the tracking pipeline: ε byte-identity or
/// typed `SourceExhausted`, deterministic replay — the PR's acceptance
/// criterion.
#[test]
fn fault_matrix_64_schedules_epsilon_exact_or_typed_failure() {
    run_matrix(64);
}

/// Long-sweep variant for CI's scheduled job (`cargo test -- --ignored`).
#[test]
#[ignore = "long sweep; run explicitly via cargo test -- --ignored"]
fn fault_matrix_long_sweep_512_schedules() {
    run_matrix(512);
}

/// ε-invariance with owner-supplied annotations and the LP-rounding
/// optimizer: full-span objects make the reduced presence matrix identical
/// no matter which member of a segment becomes its key frame, so not just
/// ε but the entire Phase I transcript must match the fault-free run.
#[test]
fn owner_annotations_phase1_transcript_is_fault_invariant() {
    let video = cut_scene();
    let mut cfg = matrix_config();
    cfg.optimizer = OptimizerStrategy::LpRounding;
    cfg.optimizer_noise_epsilon = None;
    let verro = Verro::new(cfg).expect("valid config");

    let mut annotations = VideoAnnotations::new(FRAMES);
    for k in 0..FRAMES {
        annotations.record(
            ObjectId(1),
            ObjectClass::Pedestrian,
            k,
            BBox::new(6.0, 6.0, 8.0, 8.0),
        );
        annotations.record(
            ObjectId(2),
            ObjectClass::Pedestrian,
            k,
            BBox::new(30.0, 22.0, 8.0, 8.0),
        );
    }

    let clean = verro.sanitize(&video, &annotations).expect("clean run");
    let mut non_exhausted = 0usize;
    for i in 0..16 {
        let schedule = schedule_for(i);
        let src = FaultySource::new(video.clone(), schedule);
        match verro.sanitize_fallible(&src, &annotations, policy_for(i)) {
            Ok(result) => {
                non_exhausted += 1;
                assert_eq!(result.privacy, clean.privacy, "schedule {i}: ε drift");
                assert_eq!(
                    result.phase1.randomized, clean.phase1.randomized,
                    "schedule {i}: Phase I randomness must not depend on fault outcomes"
                );
                // Positions, not global indices: a repair may shift which
                // member of a segment is its max-entropy key frame, but the
                // optimizer's decision over the key-frame list cannot move.
                assert_eq!(
                    result.phase1.picked_positions, clean.phase1.picked_positions,
                    "schedule {i}: optimizer pick must not depend on fault outcomes"
                );
            }
            Err(VerroError::SourceExhausted { .. }) => {}
            Err(other) => panic!("schedule {i}: unexpected error {other}"),
        }
    }
    assert!(
        non_exhausted >= 8,
        "sweep is vacuous, only {non_exhausted} completed"
    );
}

/// The streaming entry point under the same fault matrix: for every
/// schedule, `sanitize_streaming_fallible` either succeeds with a
/// [`PrivacyStatement`] byte-identical to the fault-free batch run — so
/// ε is invariant to faults *and* to the batch/stream split at once — or
/// fails with the typed `SourceExhausted`. Successful schedules are also
/// cross-checked against batch `sanitize_fallible` for identical health.
#[test]
fn streaming_privacy_is_schedule_invariant_byte_for_byte() {
    let video = cut_scene();
    let verro = Verro::new(matrix_config()).expect("valid config");

    // Owner-supplied full-span objects, as in the Phase I transcript test.
    let mut annotations = VideoAnnotations::new(FRAMES);
    for k in 0..FRAMES {
        annotations.record(
            ObjectId(1),
            ObjectClass::Pedestrian,
            k,
            BBox::new(6.0, 6.0, 8.0, 8.0),
        );
        annotations.record(
            ObjectId(2),
            ObjectClass::Pedestrian,
            k,
            BBox::new(30.0, 22.0, 8.0, 8.0),
        );
    }

    let clean = verro.sanitize(&video, &annotations).expect("clean run");
    let baseline_bytes = serde_json::to_string(&clean.privacy).expect("serialize");

    let mut succeeded = 0usize;
    let mut exhausted = 0usize;
    for i in 0..16 {
        let schedule = schedule_for(i);
        let policy = policy_for(i);
        let src = FaultySource::new(video.clone(), schedule);
        let mut delivered = 0usize;
        let stream = verro.sanitize_streaming_fallible(
            &src,
            &annotations,
            policy,
            &StreamOptions::default(),
            |_, _| delivered += 1,
        );
        match stream {
            Ok(out) => {
                succeeded += 1;
                assert_eq!(delivered, FRAMES, "schedule {i}: sink missed frames");
                let bytes = serde_json::to_string(&out.privacy).expect("serialize");
                assert_eq!(
                    bytes, baseline_bytes,
                    "schedule {i}: streaming privacy statement drifted from the \
                     fault-free batch run"
                );
                let batch = verro
                    .sanitize_fallible(&src, &annotations, policy)
                    .expect("batch must agree with streaming on success");
                assert_eq!(
                    out.health, batch.health,
                    "schedule {i}: streaming health diverged from batch"
                );
            }
            Err(VerroError::SourceExhausted { error, health }) => {
                exhausted += 1;
                assert!(
                    !error.is_retryable(),
                    "schedule {i}: exhaustion must be caused by a non-retryable \
                     fault under the default retry budget, got {error}"
                );
                assert!(health.num_frames() <= FRAMES);
            }
            Err(other) => panic!("schedule {i}: unexpected error {other}"),
        }
    }
    assert!(
        succeeded >= 8,
        "streaming matrix is vacuous: only {succeeded} completed ({exhausted} exhausted)"
    );
}

/// The strict policy (no retries, fail on first corruption) turns any
/// unhealable schedule into `SourceExhausted` whose health log stops at the
/// offending frame — operators can read *which* frame ended the run.
#[test]
fn strict_policy_reports_the_stopping_frame() {
    let video = cut_scene();
    let verro = Verro::new(matrix_config()).expect("valid config");
    // transient_rate 0.6 with zero retries: some early frame always fails.
    let schedule = FaultSchedule::mixed(7, 0.6);
    let src = FaultySource::new(video.clone(), schedule);
    let err = verro
        .sanitize_fallible(
            &src,
            &VideoAnnotations::new(FRAMES),
            RecoveryPolicy::strict(),
        )
        .expect_err("strict policy must exhaust on a dense schedule");
    match err {
        VerroError::SourceExhausted { error, health } => {
            let frame = error.frame();
            assert!(frame < FRAMES, "stopping frame {frame} out of range");
            assert!(health.num_frames() <= FRAMES);
        }
        other => panic!("expected SourceExhausted, got {other}"),
    }
}
