//! Memory-ceiling and liveness certification of the streaming stage graph.
//!
//! Two properties from DESIGN.md §12 are on trial here. First, the hard
//! working-set ceiling: with a deliberately *slow* sink — the worst case
//! for a producer/consumer graph, since rendered frames pile up against the
//! bounded render channel — the gauge's high-water mark of resident raster
//! bytes plus the decoded-frame cache's high-water mark must stay at or
//! under `stream_memory_budget`. Backpressure, not buffering, absorbs the
//! rate mismatch. Second, deadlock freedom: the graph must complete with
//! every channel squeezed to one slot and the budget at its floor (a single
//! render slot, zero cache), certified under a watchdog so a cycle would
//! fail the test instead of hanging the suite.

use std::sync::mpsc;
use std::time::Duration;
use verro_core::config::BackgroundMode;
use verro_core::{StreamBudget, StreamOptions, Verro, VerroConfig};
use verro_video::camera::Camera;
use verro_video::generator::{GeneratedVideo, VideoSpec};
use verro_video::geometry::Size;
use verro_video::object::ObjectClass;
use verro_video::scene::SceneKind;
use verro_video::source::FrameSource;

const SIZE: Size = Size::new(96, 72);

fn workload() -> GeneratedVideo {
    GeneratedVideo::generate(VideoSpec {
        name: "stream-memory".into(),
        nominal_size: SIZE,
        raster_scale: 1.0,
        num_frames: 40,
        num_objects: 5,
        scene: SceneKind::DaySquare,
        camera: Camera::Static,
        class: ObjectClass::Pedestrian,
        fps: 30.0,
        seed: 3,
        min_lifetime: 10,
        max_lifetime: 34,
        lifetime_mix: None,
        lighting_drift: 0.15,
        lighting_period: 8.0,
    })
}

fn config(budget: usize) -> VerroConfig {
    let mut cfg = VerroConfig::default()
        .with_flip(0.1)
        .with_seed(7)
        .with_stream_budget(budget);
    cfg.background = BackgroundMode::TemporalMedian;
    cfg.keyframe.tau = 0.96;
    cfg.optimizer_noise_epsilon = None;
    cfg
}

/// The fixed slot reservation (`background_samples` + stage overhead) as
/// the planner computes it, read off a plan under an unconstrained budget
/// so the tests track the planner instead of hardcoding its constants.
fn fixed_slots() -> usize {
    StreamBudget::plan(SIZE, &config(usize::MAX))
        .expect("unconstrained budget plans")
        .fixed_slots
}

fn frame_bytes() -> usize {
    (SIZE.area() as usize) * 3
}

/// A sink that drains far slower than the render stage produces must not
/// push the resident working set past the configured ceiling: the bounded
/// render channel blocks the producer instead.
#[test]
fn slow_consumer_stays_under_the_ceiling() {
    let video = workload();
    // Tight but feasible: the fixed window plus a few render/cache slots.
    let budget = (fixed_slots() + 4) * frame_bytes();
    let cfg = config(budget);
    let verro = Verro::new(cfg).expect("valid config");
    let mut delivered = 0usize;
    let out = verro
        .sanitize_streaming(
            &video,
            video.annotations(),
            &StreamOptions::default(),
            |k, _| {
                assert_eq!(k, delivered, "sink frames out of order");
                delivered += 1;
                // The slow consumer: every frame dwells at the sink.
                std::thread::sleep(Duration::from_millis(2));
            },
        )
        .expect("streaming succeeds under a slow sink");
    assert_eq!(delivered, FrameSource::num_frames(&video));
    assert!(out.stats.peak_raster_bytes > 0, "gauge never charged");
    assert!(
        out.stats.peak_raster_bytes + out.stats.cache.peak_bytes <= budget,
        "slow sink pushed peak {} + cache {} past the {budget}-byte ceiling",
        out.stats.peak_raster_bytes,
        out.stats.cache.peak_bytes
    );
}

/// The stage graph completes with every capacity at its minimum — 1-slot
/// ingest channel, chunk size 1, and a floor budget that leaves exactly one
/// render slot and no cache — under a watchdog, certifying there is no
/// channel cycle that a minimal configuration could close into a deadlock.
#[test]
fn one_slot_channels_do_not_deadlock() {
    let budget = (fixed_slots() + 1) * frame_bytes();
    let plan = StreamBudget::plan(SIZE, &config(budget)).expect("floor budget plans");
    assert_eq!(plan.render_slots, 1, "floor budget should leave one slot");
    assert_eq!(plan.cache_budget, 0, "floor budget should leave no cache");

    let (done_tx, done_rx) = mpsc::channel();
    std::thread::spawn(move || {
        let video = workload();
        let verro = Verro::new(config(budget)).expect("valid config");
        let mut delivered = 0usize;
        let result = verro.sanitize_streaming(
            &video,
            video.annotations(),
            &StreamOptions {
                chunk_size: 1,
                channel_slots: 1,
            },
            |_, _| delivered += 1,
        );
        let _ = done_tx.send(result.map(|out| (delivered, out.stats.peak_raster_bytes)));
    });
    match done_rx.recv_timeout(Duration::from_secs(120)) {
        Ok(result) => {
            let (delivered, peak) = result.expect("floor-budget streaming succeeds");
            assert_eq!(delivered, 40);
            assert!(peak <= budget, "peak {peak} exceeded floor budget {budget}");
        }
        Err(_) => panic!("streaming deadlocked with 1-slot channels (watchdog fired)"),
    }
}
