//! Crash-matrix certification of the checkpointed streaming engine
//! (DESIGN.md §14): a run killed at any seeded injection point and resumed
//! from its journal must publish **exactly** the bytes of an uninterrupted
//! run — resume never re-randomizes — and every tampered precondition
//! (journal bytes, run identity, persisted frames) must be a typed refusal,
//! never a silent fresh start.
//!
//! The "crash" here is a sink that fails typed at the N-th delivery. Because
//! every durable effect of the engine is transactional (frames become
//! durable in `commit_segment` *before* the journal records the segment,
//! and the journal itself is written tmp → fsync → rename), an in-process
//! abort at delivery N is observationally identical to `kill -9` at that
//! instant: the matrix walks N across the clip and asserts byte identity of
//! the resumed output each time. The process-level variant (real SIGKILL,
//! real filesystem) runs in CI's chaos job against the `verro` binary.

use std::collections::BTreeMap;
use std::path::PathBuf;
use verro_core::config::BackgroundMode;
use verro_core::journal::{self, RunJournal};
use verro_core::stream::SegmentSink;
use verro_core::supervise::{supervise, SupervisorPolicy, CANCELLED_REASON};
use verro_core::{CheckpointOptions, StreamOptions, Verro, VerroConfig, VerroError};
use verro_video::generator::{GeneratedVideo, VideoSpec};
use verro_video::image::ImageBuffer;
use verro_video::recover::RecoveryPolicy;
use verro_video::{Camera, ObjectClass, SceneKind, Size};

fn tiny_video(seed: u64) -> GeneratedVideo {
    GeneratedVideo::generate(VideoSpec {
        name: format!("crash-matrix-{seed}"),
        nominal_size: Size::new(96, 72),
        raster_scale: 1.0,
        num_frames: 36,
        num_objects: 5,
        scene: SceneKind::DaySquare,
        camera: Camera::Static,
        class: ObjectClass::Pedestrian,
        fps: 30.0,
        seed,
        min_lifetime: 10,
        max_lifetime: 30,
        lifetime_mix: None,
        lighting_drift: 0.1,
        lighting_period: 10.0,
    })
}

/// Several segments per clip, cheap backgrounds, deterministic seed.
fn harness_config(seed: u64) -> VerroConfig {
    let mut cfg = VerroConfig::default().with_flip(0.2).with_seed(seed);
    cfg.background = BackgroundMode::TemporalMedian;
    cfg.keyframe.tau = 0.94;
    cfg.keyframe.stride = 2;
    cfg.optimizer_noise_epsilon = None;
    cfg
}

fn journal_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("verro-crash-matrix");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}-{}.journal", std::process::id()))
}

/// A sink with the durability semantics of the CLI's PPM sink, plus a
/// seeded crash: `put` stages a frame, `commit_segment` makes the
/// segment's frames durable, and the `fail_at_put`-th delivery returns a
/// typed sink fault — aborting the run exactly the way a kill would, with
/// only committed segments surviving in `durable`.
#[derive(Default)]
struct CrashySink {
    durable: BTreeMap<usize, ImageBuffer>,
    staged: BTreeMap<usize, ImageBuffer>,
    fail_at_put: Option<usize>,
    fail_commit_of_segment: Option<usize>,
    puts: usize,
}

impl SegmentSink for CrashySink {
    fn put(&mut self, k: usize, frame: &ImageBuffer) -> Result<(), VerroError> {
        if self.fail_at_put == Some(self.puts) {
            return Err(VerroError::SinkFailed {
                frame: k,
                reason: "injected crash".into(),
            });
        }
        self.puts += 1;
        self.staged.insert(k, frame.clone());
        Ok(())
    }

    fn commit_segment(&mut self, seg: usize, d0: usize, d1: usize) -> Result<(), VerroError> {
        if self.fail_commit_of_segment == Some(seg) {
            // Crash mid-commit: the staged frames are lost, nothing was
            // journaled, and resume must re-render the whole segment.
            self.staged.clear();
            return Err(VerroError::SinkFailed {
                frame: d0,
                reason: "injected commit crash".into(),
            });
        }
        for k in d0..=d1 {
            if let Some(f) = self.staged.remove(&k) {
                self.durable.insert(k, f);
            }
        }
        Ok(())
    }

    fn persisted_fingerprint(&mut self, d0: usize, d1: usize) -> Result<u64, VerroError> {
        let mut fp = journal::fnv1a_seed();
        for k in d0..=d1 {
            match self.durable.get(&k) {
                Some(f) => fp = journal::frame_fold(fp, k, f),
                None => {
                    return Err(VerroError::SinkFailed {
                        frame: k,
                        reason: "persisted frame missing".into(),
                    })
                }
            }
        }
        Ok(fp)
    }
}

fn run_checkpointed(
    verro: &Verro,
    video: &GeneratedVideo,
    path: &PathBuf,
    resume: bool,
    sink: &mut CrashySink,
) -> Result<verro_core::CheckpointedOutput, VerroError> {
    let ckpt = CheckpointOptions {
        resume,
        ..CheckpointOptions::new(path)
    };
    verro.sanitize_streaming_checkpointed(
        video,
        video.annotations(),
        RecoveryPolicy::default(),
        &StreamOptions::default(),
        &ckpt,
        sink,
    )
}

/// The uninterrupted reference: durable frames and the privacy statement.
fn reference(
    verro: &Verro,
    video: &GeneratedVideo,
    name: &str,
) -> (BTreeMap<usize, ImageBuffer>, String, usize) {
    let path = journal_path(name);
    let _ = std::fs::remove_file(&path);
    let mut sink = CrashySink::default();
    let out = run_checkpointed(verro, video, &path, false, &mut sink).unwrap();
    assert!(out.output.privacy.is_consistent());
    let _ = std::fs::remove_file(&path);
    (sink.durable, format!("{:?}", out.output.privacy), sink.puts)
}

#[test]
fn resumed_runs_are_byte_identical_across_the_crash_matrix() {
    let video = tiny_video(7);
    let verro = Verro::new(harness_config(7)).unwrap();
    let (ref_frames, ref_privacy, total_puts) = reference(&verro, &video, "ref");
    assert!(total_puts > 4, "matrix needs a few frames to crash between");

    // Crash at the first delivery, a quarter in, mid-run, three quarters
    // in, and on the final delivery.
    let mut points = vec![0, total_puts / 4, total_puts / 2, (3 * total_puts) / 4];
    points.push(total_puts - 1);
    points.dedup();

    for fail_at in points {
        let path = journal_path(&format!("matrix-{fail_at}"));
        let _ = std::fs::remove_file(&path);
        let mut sink = CrashySink {
            fail_at_put: Some(fail_at),
            ..CrashySink::default()
        };
        let err = run_checkpointed(&verro, &video, &path, false, &mut sink).unwrap_err();
        assert!(
            matches!(err, VerroError::SinkFailed { .. }),
            "crash at put {fail_at}: expected SinkFailed, got {err:?}"
        );

        // The journal records exactly the durably committed prefix.
        let committed_before = RunJournal::load(&path).unwrap().segments().len();

        // Resume with the fault disarmed: only the unfinished suffix
        // renders, and the published bytes match the uninterrupted run.
        sink.fail_at_put = None;
        sink.staged.clear();
        let puts_before_resume = sink.puts;
        let out = run_checkpointed(&verro, &video, &path, true, &mut sink)
            .unwrap_or_else(|e| panic!("resume after crash at put {fail_at} failed: {e}"));
        assert_eq!(out.resumed_segments, committed_before);
        assert_eq!(out.committed_segments, out.total_segments);
        assert!(!out.interrupted);
        if committed_before > 0 {
            assert!(
                sink.puts - puts_before_resume < total_puts,
                "resume re-rendered already-committed segments"
            );
        }
        assert_eq!(
            sink.durable.len(),
            ref_frames.len(),
            "crash at put {fail_at}: frame count diverged"
        );
        for (k, img) in &ref_frames {
            assert_eq!(
                sink.durable.get(k),
                Some(img),
                "crash at put {fail_at}: frame {k} diverged after resume"
            );
        }
        assert_eq!(
            format!("{:?}", out.output.privacy),
            ref_privacy,
            "crash at put {fail_at}: privacy statement diverged — resume re-randomized"
        );
        assert!(RunJournal::load(&path).unwrap().is_done());
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn crash_between_render_and_commit_re_renders_byte_identically() {
    let video = tiny_video(11);
    let verro = Verro::new(harness_config(11)).unwrap();
    let (ref_frames, ref_privacy, _) = reference(&verro, &video, "commit-ref");

    let path = journal_path("commit-crash");
    let _ = std::fs::remove_file(&path);
    let mut sink = CrashySink {
        fail_commit_of_segment: Some(1),
        ..CrashySink::default()
    };
    let err = run_checkpointed(&verro, &video, &path, false, &mut sink).unwrap_err();
    assert!(matches!(err, VerroError::SinkFailed { .. }));
    // Segment 1 was rendered but never became durable or journaled.
    assert_eq!(RunJournal::load(&path).unwrap().segments().len(), 1);

    sink.fail_commit_of_segment = None;
    sink.staged.clear();
    let out = run_checkpointed(&verro, &video, &path, true, &mut sink).unwrap();
    assert_eq!(out.resumed_segments, 1);
    assert_eq!(out.committed_segments, out.total_segments);
    for (k, img) in &ref_frames {
        assert_eq!(sink.durable.get(k), Some(img), "frame {k} diverged");
    }
    assert_eq!(format!("{:?}", out.output.privacy), ref_privacy);
    let _ = std::fs::remove_file(&path);
}

/// Crash the run mid-clip and return `(journal path, sink)` primed for a
/// resume attempt.
fn crashed_run(verro: &Verro, video: &GeneratedVideo, name: &str) -> (PathBuf, CrashySink) {
    let (_, _, total_puts) = reference(verro, video, &format!("{name}-probe"));
    let path = journal_path(name);
    let _ = std::fs::remove_file(&path);
    let mut sink = CrashySink {
        fail_at_put: Some(total_puts / 2),
        ..CrashySink::default()
    };
    run_checkpointed(verro, video, &path, false, &mut sink).unwrap_err();
    assert!(
        !RunJournal::load(&path).unwrap().segments().is_empty(),
        "fixture needs at least one committed segment"
    );
    sink.fail_at_put = None;
    sink.staged.clear();
    (path, sink)
}

#[test]
fn tampered_journal_is_refused_typed() {
    let video = tiny_video(13);
    let verro = Verro::new(harness_config(13)).unwrap();
    let (path, mut sink) = crashed_run(&verro, &video, "tamper");

    let pristine = std::fs::read_to_string(&path).unwrap();

    // A corrupted header is unparseable: typed JournalCorrupt.
    std::fs::write(
        &path,
        pristine.replacen("verro-journal-v1", "verro-journal-vX", 1),
    )
    .unwrap();
    let err = run_checkpointed(&verro, &video, &path, true, &mut sink).unwrap_err();
    assert!(
        matches!(err, VerroError::JournalCorrupt { .. }),
        "expected JournalCorrupt, got {err:?}"
    );

    // A parseable journal whose segment fingerprint was edited no longer
    // matches what the sink persisted: typed ResumeMismatch, not a silent
    // re-render under the forged record.
    let forged: String = pristine
        .lines()
        .map(|line| {
            if let Some(rest) = line.strip_prefix("segment 0 ") {
                let mut parts: Vec<String> = rest.split(' ').map(str::to_string).collect();
                let fp = parts.last_mut().unwrap();
                *fp = format!("{:016x}", u64::from_str_radix(fp, 16).unwrap() ^ 1);
                format!("segment 0 {}\n", parts.join(" "))
            } else {
                format!("{line}\n")
            }
        })
        .collect();
    std::fs::write(&path, forged).unwrap();
    let err = run_checkpointed(&verro, &video, &path, true, &mut sink).unwrap_err();
    assert!(
        matches!(err, VerroError::ResumeMismatch { .. }),
        "expected ResumeMismatch, got {err:?}"
    );

    // Truncating a field is unparseable again.
    std::fs::write(&path, pristine.replacen("seed ", "sed ", 1)).unwrap();
    let err = run_checkpointed(&verro, &video, &path, true, &mut sink).unwrap_err();
    assert!(matches!(err, VerroError::JournalCorrupt { .. }));

    let _ = std::fs::remove_file(&path);
}

#[test]
fn resume_under_a_different_identity_is_refused() {
    let video = tiny_video(17);
    let verro = Verro::new(harness_config(17)).unwrap();
    let (path, mut sink) = crashed_run(&verro, &video, "identity");

    // Different seed: refused before any rendering (re-randomization).
    let reseeded = Verro::new(harness_config(18)).unwrap();
    let err = run_checkpointed(&reseeded, &video, &path, true, &mut sink).unwrap_err();
    assert!(
        matches!(err, VerroError::ResumeMismatch { ref what, .. } if what == "seed"),
        "expected seed ResumeMismatch, got {err:?}"
    );

    // Same seed, different config knob: config fingerprint mismatch.
    let mut cfg = harness_config(17);
    cfg.keyframe.tau = 0.9;
    let reconfigured = Verro::new(cfg).unwrap();
    let err = run_checkpointed(&reconfigured, &video, &path, true, &mut sink).unwrap_err();
    assert!(
        matches!(err, VerroError::ResumeMismatch { ref what, .. } if what == "config fingerprint"),
        "expected config ResumeMismatch, got {err:?}"
    );

    // Same run, different input video: input fingerprint mismatch.
    let other = tiny_video(99);
    let err = run_checkpointed(&verro, &other, &path, true, &mut sink).unwrap_err();
    assert!(
        matches!(err, VerroError::ResumeMismatch { .. }),
        "expected input ResumeMismatch, got {err:?}"
    );

    let _ = std::fs::remove_file(&path);
}

#[test]
fn tampered_persisted_frames_are_refused() {
    let video = tiny_video(19);
    let verro = Verro::new(harness_config(19)).unwrap();
    let (path, mut sink) = crashed_run(&verro, &video, "bitrot");

    // Corrupt one durably-committed frame behind the journal's back: the
    // resume verification re-reads persisted bytes and refuses.
    let (&k, frame) = sink.durable.iter().next().unwrap();
    let mut rotted = frame.clone();
    rotted.bytes_mut()[0] = rotted.bytes_mut()[0].wrapping_add(1);
    sink.durable.insert(k, rotted);
    let err = run_checkpointed(&verro, &video, &path, true, &mut sink).unwrap_err();
    assert!(
        matches!(err, VerroError::ResumeMismatch { .. }),
        "expected ResumeMismatch on tampered persisted frame, got {err:?}"
    );

    let _ = std::fs::remove_file(&path);
}

#[test]
fn stalled_stream_exhausts_restarts_with_a_typed_failure() {
    let policy = SupervisorPolicy {
        stall_timeout_ms: 20,
        max_restarts: 2,
        backoff_base_ms: 10,
        backoff_cap_ms: 40,
    };
    let mut attempts = 0u32;
    let (report, outcome) = supervise("cam-0", &policy, |_, _heartbeat, cancel| {
        attempts += 1;
        // Never ticks the heartbeat: every attempt stalls until the
        // watchdog cancels it.
        while !cancel.is_cancelled() {
            std::thread::yield_now();
        }
        Err::<(), _>(VerroError::SinkFailed {
            frame: 0,
            reason: CANCELLED_REASON.into(),
        })
    });
    let err = outcome.unwrap_err();
    assert!(
        matches!(
            err,
            VerroError::Stalled {
                ref stream,
                timeout_ms: 20,
                restarts: 2,
            } if stream == "cam-0"
        ),
        "expected Stalled, got {err:?}"
    );
    assert_eq!(attempts, 3, "initial attempt + 2 restarts");
    assert_eq!(report.restarts, 2);
    assert_eq!(report.stalls, 3);
    // Recorded, never slept: 10 then 20 ms of exponential backoff.
    assert_eq!(report.backoff_ms, 30);
}

#[test]
fn panicking_stream_is_isolated_as_a_typed_failure() {
    let policy = SupervisorPolicy::default();
    let (report, outcome) = supervise::<(), _>("cam-1", &policy, |_, _, _| {
        panic!("poisoned frame decode");
    });
    let err = outcome.unwrap_err();
    assert!(
        matches!(
            err,
            VerroError::StreamFailed { ref stream, ref reason }
                if stream == "cam-1" && reason.contains("poisoned frame decode")
        ),
        "expected StreamFailed, got {err:?}"
    );
    assert_eq!(report.panics, 1);
    assert_eq!(report.restarts, 0, "panics are terminal, not restarted");
}
