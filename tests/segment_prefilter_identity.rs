//! Pre-filter and dedup identity certification: the gradient-fingerprint
//! fast path of DESIGN.md §15 is pure scheduling. With the pre-filter on,
//! the segmentation result — and therefore every published byte — must be
//! bit-identical to the unfiltered run: same [`KeyFrameResult`], same
//! rendered `V*` PPM bytes, same serialized `PrivacyStatement`, across the
//! three MOT presets, two seeds, several strides, both kernel modes, batch
//! AND streaming, and under deterministic fault schedules. Likewise
//! `--dedup-streams` only routes work: canonical streams publish the exact
//! dedup-off bytes and ε is charged once per canonical stream.

use verro_core::config::BackgroundMode;
use verro_core::supervise::{DedupConfig, DedupRegistry, DedupVerdict, StreamSignature};
use verro_core::{StreamOptions, Verro, VerroConfig};
use verro_video::fault::{FaultSchedule, FaultySource};
use verro_video::generator::{GeneratedVideo, MotPreset};
use verro_video::recover::{CorruptAction, RecoveryPolicy};
use verro_video::source::{FrameSource, InMemoryVideo};
use verro_vision::fingerprint::FingerprintMode;
use verro_vision::keyframe::extract_key_frames_with_stats;

const SEEDS: [u64; 2] = [7, 41];

/// A Table 1 preset trimmed for tier-1 (same shape as `stream_identity`):
/// the preset's scene, camera, and lighting at a small raster, short clip.
fn preset_video(preset: MotPreset, seed: u64) -> GeneratedVideo {
    let mut spec = preset.spec(0.05, seed);
    spec.num_frames = 48;
    spec.num_objects = spec.num_objects.min(9);
    spec.min_lifetime = spec.min_lifetime.min(12);
    spec.max_lifetime = spec.max_lifetime.min(44);
    GeneratedVideo::generate(spec)
}

fn harness_config(seed: u64, fingerprint: FingerprintMode) -> VerroConfig {
    let mut cfg = VerroConfig::default().with_flip(0.2).with_seed(seed);
    cfg.background = BackgroundMode::TemporalMedian;
    cfg.keyframe.tau = 0.94;
    cfg.keyframe.stride = 2;
    cfg.keyframe.fingerprint = fingerprint;
    cfg.optimizer_noise_epsilon = None;
    cfg
}

/// A duplicate-heavy variant of a preset clip: frames are held in runs of
/// `hold`, the surveillance shape in which consecutive sampled frames are
/// byte-identical and the pre-filter actually reuses histograms.
fn duplicate_heavy(preset: MotPreset, seed: u64, hold: usize) -> (InMemoryVideo, GeneratedVideo) {
    let gen = preset_video(preset, seed);
    let frames = (0..FrameSource::num_frames(&gen))
        .map(|k| gen.frame(k - k % hold))
        .collect();
    let held = InMemoryVideo::try_new(frames, gen.fps()).expect("clip is non-empty");
    (held, gen)
}

/// The byte-level fingerprint of a release: every rendered `V*` frame as
/// encoded PPM bytes plus the serialized privacy statement.
type Fingerprint = (Vec<Vec<u8>>, String);

fn batch_fingerprint<S: FrameSource + Sync>(
    video: &S,
    ann: &verro_video::annotations::VideoAnnotations,
    cfg: &VerroConfig,
) -> Fingerprint {
    let verro = Verro::new(cfg.clone()).expect("valid config");
    let result = verro.sanitize(video, ann).expect("batch sanitize succeeds");
    let frames = result
        .video
        .render_all()
        .iter()
        .map(|f| f.to_ppm())
        .collect();
    let privacy = serde_json::to_string(&result.privacy).expect("privacy serializes");
    (frames, privacy)
}

/// Streaming release bytes plus the engine's pre-filter counters.
fn stream_fingerprint<S: FrameSource + Sync>(
    video: &S,
    ann: &verro_video::annotations::VideoAnnotations,
    cfg: &VerroConfig,
) -> (Fingerprint, verro_vision::fingerprint::PrefilterStats) {
    let verro = Verro::new(cfg.clone()).expect("valid config");
    let mut frames: Vec<Vec<u8>> = Vec::new();
    let out = verro
        .sanitize_streaming(video, ann, &StreamOptions::default(), |k, img| {
            assert_eq!(k, frames.len(), "sink frames out of order");
            frames.push(img.to_ppm());
        })
        .expect("streaming sanitize succeeds");
    let privacy = serde_json::to_string(&out.privacy).expect("privacy serializes");
    ((frames, privacy), out.stats.prefilter)
}

/// The segmentation layer itself: with the pre-filter on, the
/// [`verro_vision::keyframe::KeyFrameResult`] equals the unfiltered one on
/// every preset × seed × stride × kernel mode, and the counters balance.
#[test]
fn keyframe_result_is_identical_across_presets_strides_and_kernels() {
    use verro_core::KernelMode;

    for &preset in MotPreset::ALL.iter() {
        for seed in SEEDS {
            let video = preset_video(preset, 11 + seed);
            for stride in [1usize, 2, 3] {
                for kernels in [KernelMode::Scalar, KernelMode::Simd] {
                    kernels.apply();
                    let mut on = harness_config(seed, FingerprintMode::Auto).keyframe;
                    on.stride = stride;
                    let mut off = on;
                    off.fingerprint = FingerprintMode::Off;
                    let (r_on, s_on) =
                        extract_key_frames_with_stats(&video, &on).expect("clip is non-empty");
                    let (r_off, _) =
                        extract_key_frames_with_stats(&video, &off).expect("clip is non-empty");
                    verro_vision::simd::set_kernel_override(None);
                    verro_ldp::simd::set_kernel_override(None);
                    assert_eq!(
                        r_on, r_off,
                        "{preset:?} seed {seed} stride {stride} {kernels:?}: \
                         pre-filter changed the segmentation"
                    );
                    assert_eq!(
                        s_on.computed + s_on.reused,
                        s_on.sampled,
                        "pre-filter counters must balance"
                    );
                }
            }
        }
    }
}

/// Full batch release: pre-filter on and off publish byte-identical frames
/// and privacy statements on every preset × seed.
#[test]
fn batch_release_is_byte_identical_with_prefilter() {
    for &preset in MotPreset::ALL.iter() {
        for seed in SEEDS {
            let video = preset_video(preset, 11 + seed);
            let on = batch_fingerprint(
                &video,
                video.annotations(),
                &harness_config(seed, FingerprintMode::Auto),
            );
            let off = batch_fingerprint(
                &video,
                video.annotations(),
                &harness_config(seed, FingerprintMode::Off),
            );
            assert_eq!(on, off, "{preset:?} seed {seed}: batch release diverged");
        }
    }
}

/// Full streaming release: same certification through the stage graph,
/// where the gate runs incrementally on the ingest thread.
#[test]
fn streaming_release_is_byte_identical_with_prefilter() {
    for &preset in MotPreset::ALL.iter() {
        for seed in SEEDS {
            let video = preset_video(preset, 11 + seed);
            let (on, _) = stream_fingerprint(
                &video,
                video.annotations(),
                &harness_config(seed, FingerprintMode::Auto),
            );
            let (off, off_stats) = stream_fingerprint(
                &video,
                video.annotations(),
                &harness_config(seed, FingerprintMode::Off),
            );
            assert_eq!(on, off, "{preset:?} seed {seed}: streamed release diverged");
            assert_eq!(off_stats.reused, 0, "Off mode must never reuse");
        }
    }
}

/// On a duplicate-heavy clip the pre-filter actually fires (reuses > 0) in
/// both batch and streaming — and the releases still match Off exactly.
#[test]
fn duplicate_heavy_clip_reuses_histograms_and_stays_identical() {
    let (held, gen) = duplicate_heavy(MotPreset::Mot01, 17, 4);
    let ann = gen.annotations();
    let cfg_on = harness_config(5, FingerprintMode::Auto);
    let cfg_off = harness_config(5, FingerprintMode::Off);

    let (r_on, stats) =
        extract_key_frames_with_stats(&held, &cfg_on.keyframe).expect("clip is non-empty");
    let (r_off, _) =
        extract_key_frames_with_stats(&held, &cfg_off.keyframe).expect("clip is non-empty");
    assert_eq!(r_on, r_off, "segmentation diverged on the held clip");
    assert!(
        stats.reused > 0,
        "held clip must exercise the reuse path (stats: {stats:?})"
    );

    assert_eq!(
        batch_fingerprint(&held, ann, &cfg_on),
        batch_fingerprint(&held, ann, &cfg_off),
        "batch release diverged on the held clip"
    );
    let (stream_on, stream_stats) = stream_fingerprint(&held, ann, &cfg_on);
    let (stream_off, _) = stream_fingerprint(&held, ann, &cfg_off);
    assert_eq!(
        stream_on, stream_off,
        "streamed release diverged on the held clip"
    );
    assert!(
        stream_stats.reused > 0,
        "streaming gate must reuse on the held clip (stats: {stream_stats:?})"
    );
}

/// Deterministic fault schedule `i`, mirroring `stream_identity`.
fn schedule_for(i: u64) -> FaultSchedule {
    let mut schedule = FaultSchedule::mixed(0x57e4_0000 + i, (i % 8) as f64 * 0.06);
    if i == 7 {
        schedule.permanent_rate = 0.05;
    }
    schedule
}

fn policy_for(i: u64) -> RecoveryPolicy {
    RecoveryPolicy {
        backoff_base_ms: 0,
        backoff_cap_ms: 0,
        on_corrupt: if i % 2 == 1 {
            CorruptAction::Skip
        } else {
            CorruptAction::Repair
        },
        ..RecoveryPolicy::default()
    }
}

/// Under 10 deterministic fault schedules the fallible pipeline agrees
/// between pre-filter on and off: same outcome class, and byte-identical
/// frames, privacy statement, and health report on success. Repairs and
/// skips flow through the recovery layer *before* the gate sees bytes, so
/// the memoization can only see what Off would have seen.
#[test]
fn fault_schedules_are_byte_identical_with_prefilter() {
    let gen = preset_video(MotPreset::Mot01, 9);
    let video = InMemoryVideo::collect_from(&gen);
    let ann = gen.annotations();
    let on = Verro::new(harness_config(13, FingerprintMode::Auto)).expect("valid config");
    let off = Verro::new(harness_config(13, FingerprintMode::Off)).expect("valid config");
    let mut succeeded = 0usize;
    for i in 0..10u64 {
        let faulty = FaultySource::new(video.clone(), schedule_for(i));
        let policy = policy_for(i);
        let r_on = on.sanitize_fallible(&faulty, ann, policy);
        let r_off = off.sanitize_fallible(&faulty, ann, policy);
        match (r_on, r_off) {
            (Ok(a), Ok(b)) => {
                succeeded += 1;
                let a_frames: Vec<Vec<u8>> =
                    a.video.render_all().iter().map(|f| f.to_ppm()).collect();
                let b_frames: Vec<Vec<u8>> =
                    b.video.render_all().iter().map(|f| f.to_ppm()).collect();
                assert_eq!(a_frames, b_frames, "schedule {i}: frames diverged");
                assert_eq!(
                    serde_json::to_string(&a.privacy).expect("privacy serializes"),
                    serde_json::to_string(&b.privacy).expect("privacy serializes"),
                    "schedule {i}: privacy statement diverged"
                );
                assert_eq!(a.health, b.health, "schedule {i}: health diverged");
            }
            (Err(ae), Err(be)) => {
                assert_eq!(
                    std::mem::discriminant(&ae),
                    std::mem::discriminant(&be),
                    "schedule {i}: on failed with {ae:?} but off with {be:?}"
                );
            }
            (r_on, r_off) => panic!(
                "schedule {i}: pre-filter on ok={} but off ok={}",
                r_on.is_ok(),
                r_off.is_ok()
            ),
        }
    }
    assert!(
        succeeded >= 6,
        "fault sweep too hostile to certify the success path ({succeeded}/10 succeeded)"
    );
}

/// The `--dedup-streams` orchestration, emulated at the library level:
/// three inputs in CLI order where the second is a byte-identical copy of
/// the first. The registry must alias the copy, canonical streams must
/// publish the exact dedup-off bytes, and ε must be charged exactly once
/// per canonical stream — never for an aliased duplicate.
#[test]
fn dedup_charges_epsilon_once_per_canonical_stream() {
    let cam0 = preset_video(MotPreset::Mot01, 21);
    let cam1 = preset_video(MotPreset::Mot01, 21); // identical clip: same spec, same seed
    let cam2 = preset_video(MotPreset::Mot03, 22);
    let cfg = harness_config(3, FingerprintMode::Auto);
    let stride = cfg.keyframe.stride;
    let dedup = DedupConfig::default();

    // Dedup-off reference releases (what every stream publishes without
    // the flag), and the ε each charges.
    let off: Vec<(Fingerprint, f64)> = [&cam0, &cam1, &cam2]
        .iter()
        .map(|v| {
            let fp = batch_fingerprint(*v, v.annotations(), &cfg);
            let verro = Verro::new(cfg.clone()).expect("valid config");
            let eps = verro
                .sanitize(*v, v.annotations())
                .expect("sanitize succeeds")
                .privacy
                .epsilon_total;
            (fp, eps)
        })
        .collect();

    // Dedup-on: claim in input order, sanitize canonical streams only.
    let mut registry = DedupRegistry::new(dedup);
    let verdicts: Vec<DedupVerdict> = [("cam0", &cam0), ("cam1", &cam1), ("cam2", &cam2)]
        .iter()
        .map(|(label, v)| registry.claim(label, StreamSignature::probe(*v, dedup.window, stride)))
        .collect();
    assert_eq!(
        verdicts[0],
        DedupVerdict::Canonical,
        "first input is canonical"
    );
    match &verdicts[1] {
        DedupVerdict::DuplicateOf {
            canonical,
            mean_distance,
            ..
        } => {
            assert_eq!(canonical, "cam0");
            assert_eq!(*mean_distance, 0.0, "byte-identical copy matches exactly");
        }
        other => panic!("copy must be aliased, got {other:?}"),
    }
    assert_eq!(
        verdicts[2],
        DedupVerdict::Canonical,
        "a structurally distinct stream stays canonical"
    );

    let mut epsilon_on = 0.0;
    for (i, verdict) in verdicts.iter().enumerate() {
        if *verdict != DedupVerdict::Canonical {
            continue; // aliased: nothing sanitized, nothing charged
        }
        let video = [&cam0, &cam1, &cam2][i];
        let fp = batch_fingerprint(video, video.annotations(), &cfg);
        assert_eq!(
            fp, off[i].0,
            "stream {i}: dedup-on canonical release diverged from dedup-off"
        );
        epsilon_on += off[i].1;
    }
    let epsilon_off_canonical = off[0].1 + off[2].1;
    assert_eq!(
        epsilon_on.to_bits(),
        epsilon_off_canonical.to_bits(),
        "ε must be the bit-exact sum over canonical streams only"
    );
    assert!(
        epsilon_on < off.iter().map(|(_, e)| e).sum::<f64>(),
        "aliasing must save the duplicate's ε charge"
    );
}
