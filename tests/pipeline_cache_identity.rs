//! Certification that the single-ingestion pipeline restructuring is pure
//! plumbing: the shared decoded-frame cache, the fused stats pass, and the
//! frame-parallel detection/rendering must leave every released byte — the
//! rendered `V*` rasters and the serialized [`PrivacyStatement`] — exactly
//! as the uncached, serial-equivalent path produces them, across seeds,
//! cache budgets (including budgets small enough to force eviction), and
//! thread counts.

use verro_core::config::BackgroundMode;
use verro_core::{SanitizedResult, Verro, VerroConfig};
use verro_video::camera::Camera;
use verro_video::generator::{GeneratedVideo, VideoSpec};
use verro_video::geometry::Size;
use verro_video::object::ObjectClass;
use verro_video::scene::SceneKind;
use verro_vision::detect::DetectorConfig;
use verro_vision::track::TrackerConfig;

const SEEDS: [u64; 2] = [7, 41];

fn workload() -> GeneratedVideo {
    GeneratedVideo::generate(VideoSpec {
        name: "cache-identity".into(),
        nominal_size: Size::new(160, 120),
        raster_scale: 1.0,
        num_frames: 36,
        num_objects: 5,
        scene: SceneKind::DaySquare,
        camera: Camera::Static,
        class: ObjectClass::Pedestrian,
        fps: 30.0,
        seed: 3,
        min_lifetime: 12,
        max_lifetime: 30,
        lifetime_mix: None,
        lighting_drift: 0.15,
        lighting_period: 8.0,
    })
}

fn config(seed: u64, cache_budget: usize) -> VerroConfig {
    let mut cfg = VerroConfig::default()
        .with_flip(0.1)
        .with_seed(seed)
        .with_cache_budget(cache_budget);
    cfg.background = BackgroundMode::TemporalMedian;
    cfg.keyframe.tau = 0.97;
    cfg.optimizer_noise_epsilon = None;
    cfg
}

/// The byte-level fingerprint of a release: every rendered `V*` frame as
/// encoded PPM bytes plus the serialized privacy statement.
fn fingerprint(result: &SanitizedResult) -> (Vec<Vec<u8>>, String) {
    let frames = result
        .video
        .render_all()
        .into_iter()
        .map(|f| f.to_ppm())
        .collect();
    let privacy = serde_json::to_string(&result.privacy).expect("privacy serializes");
    (frames, privacy)
}

fn run_annotated(seed: u64, budget: usize) -> SanitizedResult {
    let video = workload();
    Verro::new(config(seed, budget))
        .expect("valid config")
        .sanitize(&video, video.annotations())
        .expect("sanitize succeeds")
}

fn run_tracked(seed: u64, budget: usize) -> (SanitizedResult, verro_video::VideoAnnotations) {
    let video = workload();
    Verro::new(config(seed, budget))
        .expect("valid config")
        .sanitize_with_tracking(
            &video,
            &DetectorConfig::default(),
            TrackerConfig::default(),
            ObjectClass::Pedestrian,
        )
        .expect("tracking sanitize succeeds")
}

#[test]
fn cache_budgets_are_byte_identical_annotated() {
    // One frame is 160*120*3 = 57_600 bytes, so the 120_000-byte budget
    // holds two frames and continually evicts, and 0 disables the cache.
    for seed in SEEDS {
        let baseline = fingerprint(&run_annotated(seed, 0));
        for budget in [usize::MAX, 120_000] {
            let other = fingerprint(&run_annotated(seed, budget));
            assert_eq!(
                baseline, other,
                "seed {seed}, budget {budget}: release bytes diverged"
            );
        }
    }
}

#[test]
fn cache_budgets_are_byte_identical_tracked() {
    for seed in SEEDS {
        let (base_result, base_ann) = run_tracked(seed, 0);
        let baseline = fingerprint(&base_result);
        for budget in [usize::MAX, 120_000] {
            let (result, ann) = run_tracked(seed, budget);
            assert_eq!(
                base_ann, ann,
                "seed {seed}, budget {budget}: tracks diverged"
            );
            assert_eq!(
                baseline,
                fingerprint(&result),
                "seed {seed}, budget {budget}: release bytes diverged"
            );
        }
    }
}

#[test]
fn thread_counts_are_byte_identical() {
    // Every parallel stage (histograms, detection chunks, backgrounds,
    // rendering) collects in index order from pure per-item functions, so a
    // single-thread pool must reproduce the default pool byte for byte.
    let single = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("single-thread pool builds");
    for seed in SEEDS {
        let default_fp = fingerprint(&run_annotated(seed, usize::MAX));
        let single_fp = single.install(|| fingerprint(&run_annotated(seed, usize::MAX)));
        assert_eq!(
            default_fp, single_fp,
            "seed {seed}: annotated release depends on thread count"
        );

        let (default_result, default_ann) = run_tracked(seed, usize::MAX);
        let (single_result, single_ann) = single.install(|| run_tracked(seed, usize::MAX));
        assert_eq!(
            default_ann, single_ann,
            "seed {seed}: tracked annotations depend on thread count"
        );
        assert_eq!(
            fingerprint(&default_result),
            fingerprint(&single_result),
            "seed {seed}: tracked release depends on thread count"
        );
    }
}

#[test]
fn cached_run_reports_same_timing_structure() {
    // The restructuring must not break the preprocess = sum(breakdown)
    // accounting that downstream reports rely on.
    let (result, _) = run_tracked(SEEDS[0], usize::MAX);
    let t = result.timings;
    let breakdown = t.preprocess_keyframes + t.preprocess_backgrounds + t.preprocess_detect_track;
    let diff = t.preprocess.abs_diff(breakdown);
    assert!(
        diff <= t.preprocess / 10 + std::time::Duration::from_millis(5),
        "preprocess {:?} vs breakdown sum {:?}",
        t.preprocess,
        breakdown
    );
}

/// `--kernels scalar` and `--kernels simd` must publish byte-identical
/// releases: every SIMD kernel is certified bit-identical to its scalar
/// reference, so kernel selection is pure scheduling, exactly like cache
/// budgets and thread counts. (Flipping the process-global override
/// mid-suite is safe for the same reason — concurrent tests see identical
/// bytes from either arm.)
#[test]
fn kernel_modes_are_byte_identical() {
    use verro_core::KernelMode;

    let budget = VerroConfig::default().frame_cache_budget;
    for seed in SEEDS {
        KernelMode::Scalar.apply();
        let scalar = fingerprint(&run_annotated(seed, budget));
        KernelMode::Simd.apply();
        let simd = fingerprint(&run_annotated(seed, budget));
        verro_vision::simd::set_kernel_override(None);
        verro_ldp::simd::set_kernel_override(None);
        assert_eq!(
            scalar.0, simd.0,
            "seed {seed}: rendered frames diverged between kernel modes"
        );
        assert_eq!(
            scalar.1, simd.1,
            "seed {seed}: privacy statement diverged between kernel modes"
        );
    }
}
